// Package netsim is the ground-network simulator that stands in for the
// paper's testbed (1 Nexus 6 + 20 Raspberry Pi 3 over WiFi, §IX). It is a
// deterministic discrete-event simulator with a virtual clock and two
// contended resources that shape discovery latency:
//
//   - a shared wireless medium: transmissions serialize, so discovering n
//     objects grows roughly linearly in n (Fig 6e), and each extra hop costs
//     an extra medium acquisition, making transmission time linear in hop
//     count (Fig 6h);
//   - one CPU per node: computation costs injected via Compute serialize per
//     device, so the subject's per-object crypto pipeline overlaps with other
//     objects' transmissions exactly as on the real testbed.
//
// The design is justified by the paper itself: "our design is above the
// network layer and orthogonal to radios" (§IX, Testbed Rationality) — what
// determines the latency curves is message count, message size, hop count and
// computation, all of which are modeled explicitly here.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"argus/internal/obs"
)

// NodeID identifies a node in the ground network.
type NodeID int

// Handler receives messages delivered to a node.
type Handler interface {
	// HandleMessage is invoked at virtual delivery time. from is the
	// originating node (not the relay). The payload is shared; treat as
	// read-only.
	HandleMessage(net *Network, from NodeID, payload []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, from NodeID, payload []byte)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(net *Network, from NodeID, payload []byte) {
	f(net, from, payload)
}

// LinkModel is the WiFi-like cost model for one transmission.
type LinkModel struct {
	// PerMessage is the fixed per-transmission overhead (MAC contention,
	// preamble, ACK).
	PerMessage time.Duration
	// BytesPerSecond is the effective application-layer throughput.
	BytesPerSecond float64
	// PropagationDelay is the per-hop latency added after the transmission
	// completes. It models the radio+OS+application stack traversal (tens of
	// milliseconds on the paper's Android/Pi testbed, Fig 6f), not physical
	// propagation; unlike airtime it does not occupy the shared medium, so
	// messages to different nodes pipeline through it.
	PropagationDelay time.Duration
	// JitterFrac applies uniform ±frac noise to each airtime ("changeful
	// wireless transmission time", Fig 6f).
	JitterFrac float64
}

// DefaultWiFi is calibrated so the §IX-C experiments land near the paper's
// testbed numbers: one Level 1 discovery ≈ 0.13 s with ~89% of it
// transmission (Fig 6f/6h), 20 Level 1 objects ≈ 0.25 s, 20 Level 2/3
// objects ≈ 0.63 s (Fig 6e). The dominant term on the real testbed is the
// ~50 ms per-message stack traversal, reflected in PropagationDelay.
func DefaultWiFi() LinkModel {
	return LinkModel{
		PerMessage:       4 * time.Millisecond,
		BytesPerSecond:   250_000, // ~2 Mb/s effective
		PropagationDelay: 48 * time.Millisecond,
		JitterFrac:       0.15,
	}
}

// airtime computes one transmission's medium occupancy.
func (m LinkModel) airtime(bytes int, rng *rand.Rand) time.Duration {
	base := m.PerMessage + time.Duration(float64(bytes)/m.BytesPerSecond*float64(time.Second))
	if m.JitterFrac > 0 && rng != nil {
		f := 1 + m.JitterFrac*(2*rng.Float64()-1)
		base = time.Duration(float64(base) * f)
	}
	if base < 0 {
		base = 0
	}
	return base
}

// Stats accumulates network-wide counters.
type Stats struct {
	MessagesSent  int           // application messages injected
	Transmissions int           // per-hop radio transmissions
	BytesOnAir    int64         // sum of transmitted payload bytes (per hop)
	MediumBusy    time.Duration // total medium occupancy
	Drops         int           // unicast messages dropped for lack of a route

	// Fault-injection counters (see FaultModel in faults.go).
	FaultLost       int // frames lost in flight (incl. drop-filter drops)
	FaultCorrupted  int // frames delivered with flipped bytes
	FaultDuplicated int // frames delivered twice
	CrashDrops      int // frames dropped because a node was in a crash window
}

// Broadcast is the LinkKey.To sentinel for one-to-many transmissions: a
// broadcast occupies the medium once per (transmitter, channel) and reaches
// every fresh neighbor, so it cannot be attributed to a single directed link.
const Broadcast NodeID = -1

// LinkKey identifies one directed transmission edge for per-link accounting.
type LinkKey struct {
	From NodeID
	To   NodeID // Broadcast for flood transmissions
}

// LinkStat is the per-link share of the global Stats counters.
type LinkStat struct {
	Transmissions int
	Bytes         int64
}

// netTelemetry holds the network's pre-resolved metric handles. A nil
// *netTelemetry (registry never attached) costs one pointer test per event.
type netTelemetry struct {
	reg           *obs.Registry
	messages      *obs.Counter
	transmissions *obs.Counter
	bytesOnAir    *obs.Counter
	drops         *obs.Counter
	faultLost     *obs.Counter
	faultCorrupt  *obs.Counter
	faultDup      *obs.Counter
	crashDrops    *obs.Counter
	payloadBytes  *obs.Histogram
	hopLatency    *obs.Histogram
	mediumWait    *obs.Histogram
	channelBytes  map[Channel]*obs.Counter
	linkBytes     map[LinkKey]*obs.Counter
}

// message counts one injected application message; safe on a nil receiver.
func (t *netTelemetry) message() {
	if t == nil {
		return
	}
	t.messages.Inc()
}

func (t *netTelemetry) channel(ch Channel) *obs.Counter {
	c, ok := t.channelBytes[ch]
	if !ok {
		c = t.reg.Counter(obs.MNetChannelBytes, "Payload bytes transmitted per radio channel.",
			obs.L("channel", strconv.Itoa(int(ch))))
		t.channelBytes[ch] = c
	}
	return c
}

func (t *netTelemetry) link(k LinkKey) *obs.Counter {
	c, ok := t.linkBytes[k]
	if !ok {
		to := "broadcast"
		if k.To != Broadcast {
			to = strconv.Itoa(int(k.To))
		}
		c = t.reg.Counter(obs.MNetLinkBytes, "Payload bytes transmitted per directed link.",
			obs.L("from", strconv.Itoa(int(k.From))), obs.L("to", to))
		t.linkBytes[k] = c
	}
	return c
}

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)  { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)    { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any      { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() *event   { return q[0] }
func (q *eventQueue) push(e *event) { heap.Push(q, e) }
func (q *eventQueue) pop() *event   { return heap.Pop(q).(*event) }

type node struct {
	id        NodeID
	handler   Handler
	neighbors []NodeID
	cpuFree   time.Duration // earliest time this node's CPU is idle
	downUntil time.Duration // end of the current crash window (0 = up)
}

// Channel identifies a radio channel / medium. Transmissions on the same
// channel contend; different channels (different radio technologies or
// frequencies, §II-A: WiFi, Bluetooth, ZigBee) proceed concurrently. A node
// on links of two channels is a bridging device.
type Channel int

// DefaultChannel is the channel used by plain Link calls.
const DefaultChannel Channel = 0

// linkInfo carries the per-link radio parameters.
type linkInfo struct {
	channel Channel
	model   LinkModel
}

// Network is the simulated ground network.
type Network struct {
	model      LinkModel
	rng        *rand.Rand
	frng       *rand.Rand // fault-decision RNG, independent of airtime jitter
	now        time.Duration
	seq        int64
	queue      eventQueue
	nodes      []*node
	mediumFree map[Channel]time.Duration // earliest idle time per channel
	links      map[[2]NodeID]linkInfo
	faults     FaultModel             // network-wide default fault model
	linkFaults map[LinkKey]FaultModel // directed per-link overrides
	dropFilter func(from, to NodeID, payload []byte) bool
	stats      Stats
	linkStats  map[LinkKey]*LinkStat
	tel        *netTelemetry

	// dist[a][b] is the hop distance; recomputed lazily after topology edits.
	dist      [][]int
	distDirty bool

	snoop func(from, to NodeID, payload []byte)
}

// Snoop registers a passive eavesdropper invoked at delivery time for every
// message on the air (radios penetrate walls — §III). The attacker of the
// §VII analysis observes exactly this feed: full payloads, sender, receiver
// and the virtual timestamp via Now.
func (n *Network) Snoop(fn func(from, to NodeID, payload []byte)) { n.snoop = fn }

// New creates an empty network with the given link model and RNG seed
// (deterministic runs for a fixed seed).
func New(model LinkModel, seed int64) *Network {
	return &Network{
		model:      model,
		rng:        rand.New(rand.NewSource(seed)),
		frng:       rand.New(rand.NewSource(seed ^ faultSeedMix)),
		mediumFree: make(map[Channel]time.Duration),
		links:      make(map[[2]NodeID]linkInfo),
		linkStats:  make(map[LinkKey]*LinkStat),
		distDirty:  true,
	}
}

// Instrument attaches a metrics registry. Telemetry only reads the event
// stream — it never consumes RNG draws or reorders events, so a fixed-seed
// run is identical with or without it. Passing nil detaches.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		n.tel = nil
		return
	}
	n.tel = &netTelemetry{
		reg:           reg,
		messages:      reg.Counter(obs.MNetMessages, "Application messages injected (Send/Broadcast calls)."),
		transmissions: reg.Counter(obs.MNetTransmissions, "Per-hop radio transmissions."),
		bytesOnAir:    reg.Counter(obs.MNetBytesOnAir, "Transmitted payload bytes, counted per hop."),
		drops:         reg.Counter(obs.MNetDrops, "Unicast messages dropped for lack of a route."),
		faultLost:     reg.Counter(obs.MNetFaultLost, "Frames lost in flight by fault injection (incl. drop-filter drops)."),
		faultCorrupt:  reg.Counter(obs.MNetFaultCorrupted, "Frames delivered with injected byte corruption."),
		faultDup:      reg.Counter(obs.MNetFaultDuplicated, "Frames delivered twice by fault injection."),
		crashDrops:    reg.Counter(obs.MNetCrashDrops, "Frames dropped because a node was inside a crash window."),
		payloadBytes: reg.Histogram(obs.MNetPayloadBytes,
			"Payload size per transmission.", obs.SizeBuckets()),
		hopLatency: reg.Histogram(obs.MNetHopLatency,
			"Per-hop latency: medium wait + airtime + propagation.", obs.LatencyBuckets()),
		mediumWait: reg.Histogram(obs.MNetMediumWait,
			"Time a transmission waited for the shared medium (contention).", obs.LatencyBuckets()),
		channelBytes: make(map[Channel]*obs.Counter),
		linkBytes:    make(map[LinkKey]*obs.Counter),
	}
}

// AddNode registers a node and returns its ID. The handler may be nil for
// passive nodes (pure relays or eavesdropping taps added via Snoop).
func (n *Network) AddNode(h Handler) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &node{id: id, handler: h})
	n.distDirty = true
	return id
}

// SetHandler replaces a node's handler (used to rotate engines on one node).
func (n *Network) SetHandler(id NodeID, h Handler) { n.nodes[id].handler = h }

// Link connects two nodes bidirectionally on the default channel with the
// network's default radio model.
func (n *Network) Link(a, b NodeID) { n.LinkOn(a, b, DefaultChannel, n.model) }

// LinkOn connects two nodes on a specific radio channel with a specific link
// model. Transmissions on distinct channels do not contend — this models
// heterogeneous radios (WiFi/BLE/ZigBee) joined by bridging devices (§II-A).
func (n *Network) LinkOn(a, b NodeID, ch Channel, model LinkModel) {
	if a == b {
		panic("netsim: self link")
	}
	n.nodes[a].neighbors = append(n.nodes[a].neighbors, b)
	n.nodes[b].neighbors = append(n.nodes[b].neighbors, a)
	li := linkInfo{channel: ch, model: model}
	n.links[[2]NodeID{a, b}] = li
	n.links[[2]NodeID{b, a}] = li
	n.distDirty = true
}

// Unlink removes the radio adjacency between two nodes (a device moved out
// of range — discovery is proximity-based, §I). Unknown links are ignored.
func (n *Network) Unlink(a, b NodeID) {
	remove := func(list []NodeID, id NodeID) []NodeID {
		out := list[:0]
		for _, v := range list {
			if v != id {
				out = append(out, v)
			}
		}
		return out
	}
	n.nodes[a].neighbors = remove(n.nodes[a].neighbors, b)
	n.nodes[b].neighbors = remove(n.nodes[b].neighbors, a)
	delete(n.links, [2]NodeID{a, b})
	delete(n.links, [2]NodeID{b, a})
	n.distDirty = true
}

// linkOf returns the radio parameters of the a→b link (default model if the
// pair was never explicitly linked — only reachable for broadcast groups).
func (n *Network) linkOf(a, b NodeID) linkInfo {
	if li, ok := n.links[[2]NodeID{a, b}]; ok {
		return li
	}
	return linkInfo{channel: DefaultChannel, model: n.model}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns the accumulated counters.
func (n *Network) Stats() Stats { return n.stats }

// LinkStats returns a copy of the per-link accounting: how many
// transmissions and payload bytes each directed edge carried. Broadcast
// transmissions are keyed with To == Broadcast (they occupy the medium once
// per transmitter and channel). The same numbers are folded into the
// registry as argus_net_link_bytes_total when Instrument was called.
func (n *Network) LinkStats() map[LinkKey]LinkStat {
	out := make(map[LinkKey]LinkStat, len(n.linkStats))
	for k, v := range n.linkStats {
		out[k] = *v
	}
	return out
}

// After schedules fn at now+d without occupying any resource (timers,
// response-time equalization delays).
func (n *Network) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.now+d, fn)
}

// Compute schedules fn after the node's CPU has spent cost on it. Work
// queues per node: a second Compute on the same node starts only when the
// first finishes — this is what serializes the subject's per-object crypto.
func (n *Network) Compute(id NodeID, cost time.Duration, fn func()) {
	nd := n.nodes[id]
	start := n.now
	if nd.cpuFree > start {
		start = nd.cpuFree
	}
	done := start + cost
	nd.cpuFree = done
	n.schedule(done, fn)
}

func (n *Network) schedule(at time.Duration, fn func()) {
	n.seq++
	n.queue.push(&event{at: at, seq: n.seq, fn: fn})
}

func (n *Network) recomputeDist() {
	if !n.distDirty {
		return
	}
	cnt := len(n.nodes)
	n.dist = make([][]int, cnt)
	for i := range n.dist {
		n.dist[i] = make([]int, cnt)
		for j := range n.dist[i] {
			n.dist[i][j] = -1
		}
		// BFS from i.
		n.dist[i][i] = 0
		queue := []NodeID{NodeID(i)}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range n.nodes[cur].neighbors {
				if n.dist[i][nb] == -1 {
					n.dist[i][nb] = n.dist[i][cur] + 1
					queue = append(queue, nb)
				}
			}
		}
	}
	n.distDirty = false
}

// HopDistance returns the hop count between two nodes, or -1 if unreachable.
func (n *Network) HopDistance(a, b NodeID) int {
	n.recomputeDist()
	return n.dist[a][b]
}

// nextHop returns the neighbor of cur on a shortest path to dst.
func (n *Network) nextHop(cur, dst NodeID) (NodeID, bool) {
	n.recomputeDist()
	if n.dist[cur][dst] < 0 {
		return 0, false
	}
	for _, nb := range n.nodes[cur].neighbors {
		if n.dist[nb][dst] == n.dist[cur][dst]-1 {
			return nb, true
		}
	}
	return 0, false
}

// acquireMedium books one transmission on the link's channel starting no
// earlier than t, returning the completion time. from/to attribute the
// transmission for per-link accounting (to == Broadcast for floods).
func (n *Network) acquireMedium(from, to NodeID, li linkInfo, t time.Duration, bytes int) time.Duration {
	start := t
	if free := n.mediumFree[li.channel]; free > start {
		start = free
	}
	air := li.model.airtime(bytes, n.rng)
	n.mediumFree[li.channel] = start + air
	n.stats.Transmissions++
	n.stats.BytesOnAir += int64(bytes)
	n.stats.MediumBusy += air
	lk := LinkKey{From: from, To: to}
	ls, ok := n.linkStats[lk]
	if !ok {
		ls = &LinkStat{}
		n.linkStats[lk] = ls
	}
	ls.Transmissions++
	ls.Bytes += int64(bytes)
	arrive := start + air + li.model.PropagationDelay
	if tel := n.tel; tel != nil {
		tel.transmissions.Inc()
		tel.bytesOnAir.Add(int64(bytes))
		tel.payloadBytes.Observe(float64(bytes))
		tel.mediumWait.ObserveDuration(start - t)
		tel.hopLatency.ObserveDuration(arrive - t)
		tel.channel(li.channel).Add(int64(bytes))
		tel.link(lk).Add(int64(bytes))
	}
	return arrive
}

// Send unicasts payload from src to dst along a shortest path, relaying hop
// by hop. Each hop occupies the shared medium. Delivery invokes dst's
// handler; unreachable destinations are dropped silently (radio semantics).
func (n *Network) Send(src, dst NodeID, payload []byte) {
	if src == dst {
		panic("netsim: send to self")
	}
	n.stats.MessagesSent++
	n.tel.message()
	n.relay(src, src, dst, payload)
}

func (n *Network) relay(origin, cur, dst NodeID, payload []byte) {
	if n.nodeDown(cur) {
		n.countCrashDrop()
		return
	}
	hop, ok := n.nextHop(cur, dst)
	if !ok {
		n.stats.Drops++
		if n.tel != nil {
			n.tel.drops.Inc()
		}
		return
	}
	arrive := n.acquireMedium(cur, hop, n.linkOf(cur, hop), n.now, len(payload))
	forward := func(p []byte) func() {
		return func() {
			if hop == dst {
				n.deliver(origin, dst, p)
				return
			}
			n.relay(origin, hop, dst, p)
		}
	}
	f := n.faultsOn(cur, hop)
	if !f.Active() {
		n.schedule(arrive, forward(payload))
		return
	}
	if n.drawLoss(f) {
		// The frame was transmitted (medium occupied) but never received.
		n.countFaultLost()
		return
	}
	n.scheduleFaulty(f, arrive, payload, forward)
}

// Broadcast floods payload from src to every node within ttl hops. Each
// forwarding node retransmits once (duplicate-suppressed by broadcast ID —
// R_S plays this role in the real protocol, §IV-B). Delivery invokes each
// receiver's handler exactly once.
func (n *Network) Broadcast(src NodeID, payload []byte, ttl int) {
	if ttl < 1 {
		return
	}
	n.stats.MessagesSent++
	n.tel.message()
	seen := make(map[NodeID]bool)
	seen[src] = true
	n.flood(src, src, payload, ttl, seen)
}

func (n *Network) flood(origin, cur NodeID, payload []byte, ttl int, seen map[NodeID]bool) {
	if n.nodeDown(cur) {
		n.countCrashDrop()
		return
	}
	// One radio transmission per channel reaches all fresh neighbors on that
	// channel simultaneously; a bridging device transmits once per radio. A
	// per-receiver loss draw happens at selection time: reception is
	// independent per radio, and a receiver that lost the frame stays
	// unmarked in seen, so another forwarder (or a retransmission) can still
	// reach it.
	byChannel := make(map[Channel][]NodeID)
	rep := make(map[Channel]NodeID) // representative neighbor for link params
	var channels []Channel
	for _, nb := range n.nodes[cur].neighbors {
		if seen[nb] {
			continue
		}
		ch := n.linkOf(cur, nb).channel
		if _, ok := rep[ch]; !ok {
			channels = append(channels, ch)
			rep[ch] = nb
		}
		if n.drawLoss(n.faultsOn(cur, nb)) {
			n.countFaultLost()
			continue
		}
		seen[nb] = true
		byChannel[ch] = append(byChannel[ch], nb)
	}
	for _, ch := range channels {
		fresh := byChannel[ch]
		li := n.linkOf(cur, rep[ch])
		// The medium is occupied even when every receiver on the channel lost
		// the frame: the transmitter cannot know, the airtime is spent.
		arrive := n.acquireMedium(cur, Broadcast, li, n.now, len(payload))
		if len(fresh) == 0 {
			continue
		}
		faulty := false
		for _, nb := range fresh {
			if n.faultsOn(cur, nb).Active() {
				faulty = true
				break
			}
		}
		if !faulty {
			n.schedule(arrive, func() {
				for _, nb := range fresh {
					if n.deliver(origin, nb, payload) && ttl > 1 {
						nbCopy := nb
						n.schedule(n.now, func() {
							n.flood(origin, nbCopy, payload, ttl-1, seen)
						})
					}
				}
			})
			continue
		}
		// Per-receiver scheduling so corruption, jitter and duplication hit
		// each radio independently. A forwarder retransmits the bytes it
		// received — a corrupted copy propagates corrupted.
		for _, nb := range fresh {
			nbCopy := nb
			mk := func(p []byte) func() {
				return func() {
					if n.deliver(origin, nbCopy, p) && ttl > 1 {
						n.schedule(n.now, func() {
							n.flood(origin, nbCopy, p, ttl-1, seen)
						})
					}
				}
			}
			n.scheduleFaulty(n.faultsOn(cur, nbCopy), arrive, payload, mk)
		}
	}
}

// deliver hands the payload to the receiver's handler. It reports whether the
// frame actually reached the node (a downed or filtered receiver loses it) —
// flood uses the result to decide whether the receiver forwards. The snoop
// tap fires before the crash/filter checks: an eavesdropper hears the frame
// on the air regardless of what the addressee does with it.
func (n *Network) deliver(from, to NodeID, payload []byte) bool {
	if n.snoop != nil {
		n.snoop(from, to, payload)
	}
	if n.nodeDown(to) {
		n.countCrashDrop()
		return false
	}
	if n.dropFilter != nil && n.dropFilter(from, to, payload) {
		n.countFaultLost()
		return false
	}
	h := n.nodes[to].handler
	if h == nil {
		return true
	}
	h.HandleMessage(n, from, payload)
	return true
}

// Run drains the event queue, advancing virtual time until no events remain
// or the optional limit is reached. It returns the final virtual time.
func (n *Network) Run(limit time.Duration) time.Duration {
	for len(n.queue) > 0 {
		e := n.queue.peek()
		if limit > 0 && e.at > limit {
			n.now = limit
			return n.now
		}
		n.queue.pop()
		if e.at > n.now {
			n.now = e.at
		}
		e.fn()
	}
	return n.now
}

// String summarizes the network.
func (n *Network) String() string {
	return fmt.Sprintf("netsim: %d nodes, t=%v, %d transmissions", len(n.nodes), n.now, n.stats.Transmissions)
}
