package netsim

import "testing"

// BenchmarkBroadcastStar measures one simulated broadcast round over a
// 20-leaf star (the Fig 6e topology) — pure simulator overhead, no crypto.
func BenchmarkBroadcastStar(b *testing.B) {
	payload := make([]byte, 200)
	for i := 0; i < b.N; i++ {
		nw, hub, leaves := star(20, DefaultWiFi())
		count := 0
		for _, l := range leaves {
			nw.SetHandler(l, HandlerFunc(func(*Network, NodeID, []byte) { count++ }))
		}
		nw.Broadcast(hub, payload, 1)
		nw.Run(0)
		if count != 20 {
			b.Fatalf("delivered %d", count)
		}
	}
}
