package netsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// countDeliveries installs a handler on id that appends every payload.
func countDeliveries(nw *Network, id NodeID, got *[][]byte) {
	nw.SetHandler(id, HandlerFunc(func(_ *Network, _ NodeID, p []byte) {
		*got = append(*got, append([]byte(nil), p...))
	}))
}

func TestUnicastLossCounted(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	nw.SetFaults(FaultModel{Loss: 1})
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.Send(hub, leaves[0], []byte("x"))
	nw.Run(0)
	if len(got) != 0 {
		t.Fatalf("delivered %d frames under total loss", len(got))
	}
	st := nw.Stats()
	if st.FaultLost != 1 {
		t.Fatalf("FaultLost = %d, want 1", st.FaultLost)
	}
	if st.Transmissions != 1 {
		t.Fatalf("Transmissions = %d: a lost frame still occupies the medium", st.Transmissions)
	}
}

func TestCorruptionDeliversAlteredBytes(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	nw.SetFaults(FaultModel{Corrupt: 1})
	orig := []byte("some payload bytes")
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.Send(hub, leaves[0], orig)
	nw.Run(0)
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if bytes.Equal(got[0], orig) {
		t.Fatal("payload delivered unaltered despite Corrupt: 1")
	}
	if len(got[0]) != len(orig) {
		t.Fatalf("corruption changed length %d → %d; it must only flip bytes", len(orig), len(got[0]))
	}
	if string(orig) != "some payload bytes" {
		t.Fatal("corruption mutated the sender's buffer (must copy)")
	}
	if nw.Stats().FaultCorrupted != 1 {
		t.Fatalf("FaultCorrupted = %d, want 1", nw.Stats().FaultCorrupted)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	nw.SetFaults(FaultModel{Duplicate: 1})
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.Send(hub, leaves[0], []byte("x"))
	nw.Run(0)
	if len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got))
	}
	if nw.Stats().FaultDuplicated != 1 {
		t.Fatalf("FaultDuplicated = %d, want 1", nw.Stats().FaultDuplicated)
	}
}

func TestReorderJitterDelaysDelivery(t *testing.T) {
	// With jitter the two frames to different leaves can swap arrival order;
	// at minimum the arrival time differs from the no-fault run.
	base := func(jitter time.Duration) time.Duration {
		nw, hub, leaves := star(1, DefaultWiFi())
		nw.SetFaults(FaultModel{ReorderJitter: jitter})
		var at time.Duration
		nw.SetHandler(leaves[0], HandlerFunc(func(n *Network, _ NodeID, _ []byte) { at = n.Now() }))
		nw.Send(hub, leaves[0], []byte("x"))
		nw.Run(0)
		return at
	}
	if base(0) >= base(500*time.Millisecond) {
		t.Fatal("ReorderJitter did not delay delivery")
	}
}

func TestCrashWindowDropsAndRecovers(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.ScheduleCrash(leaves[0], 0, 1*time.Second)
	nw.Send(hub, leaves[0], []byte("during"))
	nw.After(2*time.Second, func() {
		nw.Send(hub, leaves[0], []byte("after"))
	})
	nw.Run(0)
	if len(got) != 1 || string(got[0]) != "after" {
		t.Fatalf("deliveries = %q, want only the post-recovery frame", got)
	}
	if nw.Stats().CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d, want 1", nw.Stats().CrashDrops)
	}
}

func TestCrashedSourceCannotTransmit(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.Crash(hub, time.Second)
	nw.Send(hub, leaves[0], []byte("x"))
	nw.Broadcast(hub, []byte("y"), 1)
	nw.Run(0)
	if len(got) != 0 {
		t.Fatalf("a downed node transmitted %d frames", len(got))
	}
	if nw.Stats().CrashDrops != 2 {
		t.Fatalf("CrashDrops = %d, want 2", nw.Stats().CrashDrops)
	}
}

func TestSnoopHearsFramesToDownedReceiver(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	snooped := 0
	nw.Snoop(func(_, _ NodeID, _ []byte) { snooped++ })
	nw.Crash(leaves[0], time.Second)
	nw.Send(hub, leaves[0], []byte("x"))
	nw.Run(0)
	if snooped != 1 {
		t.Fatalf("snoop saw %d frames, want 1: the radio still carried it", snooped)
	}
}

func TestPerLinkFaultOverride(t *testing.T) {
	nw, hub, leaves := star(2, DefaultWiFi())
	nw.SetLinkFaults(hub, leaves[0], FaultModel{Loss: 1})
	var got0, got1 [][]byte
	countDeliveries(nw, leaves[0], &got0)
	countDeliveries(nw, leaves[1], &got1)
	nw.Send(hub, leaves[0], []byte("a"))
	nw.Send(hub, leaves[1], []byte("b"))
	nw.Run(0)
	if len(got0) != 0 {
		t.Fatal("loss override on hub→leaf0 did not drop")
	}
	if len(got1) != 1 {
		t.Fatal("unrelated link affected by a per-link override")
	}
}

func TestDropFilterTargetedLoss(t *testing.T) {
	nw, hub, leaves := star(1, DefaultWiFi())
	nw.SetDropFilter(func(_, _ NodeID, p []byte) bool { return bytes.Equal(p, []byte("drop-me")) })
	var got [][]byte
	countDeliveries(nw, leaves[0], &got)
	nw.Send(hub, leaves[0], []byte("drop-me"))
	nw.Send(hub, leaves[0], []byte("keep-me"))
	nw.Run(0)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("deliveries = %q, want only keep-me", got)
	}
	if nw.Stats().FaultLost != 1 {
		t.Fatalf("FaultLost = %d, want 1 (filter drops count as losses)", nw.Stats().FaultLost)
	}
}

func TestBroadcastLossIsPerReceiver(t *testing.T) {
	// With 50% loss over many leaves, some receivers must get the frame and
	// some must lose it — per-receiver independence, not all-or-nothing.
	nw, hub, leaves := star(40, DefaultWiFi())
	nw.SetFaults(FaultModel{Loss: 0.5})
	delivered := 0
	for _, lf := range leaves {
		nw.SetHandler(lf, HandlerFunc(func(_ *Network, _ NodeID, _ []byte) { delivered++ }))
	}
	nw.Broadcast(hub, []byte("x"), 1)
	nw.Run(0)
	if delivered == 0 || delivered == len(leaves) {
		t.Fatalf("delivered = %d of %d: loss must be independent per receiver", delivered, len(leaves))
	}
	if delivered+nw.Stats().FaultLost != len(leaves) {
		t.Fatalf("delivered(%d) + lost(%d) != receivers(%d)", delivered, nw.Stats().FaultLost, len(leaves))
	}
}

// TestFaultScheduleDeterministic replays the same seed twice and requires the
// identical delivery trace, and a different fault seed to produce a different
// one (while leaving airtime jitter untouched).
func TestFaultScheduleDeterministic(t *testing.T) {
	trace := func(faultSeed int64) string {
		nw, hub, leaves := star(8, DefaultWiFi())
		nw.FaultSeed(faultSeed)
		nw.SetFaults(FaultModel{Loss: 0.3, Corrupt: 0.2, Duplicate: 0.2, ReorderJitter: 20 * time.Millisecond})
		var log bytes.Buffer
		for _, lf := range leaves {
			id := lf
			nw.SetHandler(lf, HandlerFunc(func(n *Network, _ NodeID, p []byte) {
				fmt.Fprintf(&log, "%d@%v:%x\n", id, n.Now(), p)
			}))
		}
		for i := 0; i < 5; i++ {
			nw.Broadcast(hub, []byte{byte(i), 0xaa, 0xbb}, 1)
			nw.Send(hub, leaves[i], []byte{0xcc, byte(i)})
		}
		nw.Run(0)
		return log.String()
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatal("identical fault seeds produced different delivery traces")
	}
	if a == trace(43) {
		t.Fatal("different fault seeds produced identical traces (fault RNG unused?)")
	}
}

// TestNoFaultsMatchesSeedBehavior pins the zero-fault fast path: a network
// with a FaultModel attached but all-zero must behave byte-identically to one
// with no fault layer touched at all (no fault RNG draws, same event order).
func TestNoFaultsMatchesSeedBehavior(t *testing.T) {
	run := func(attach bool) string {
		nw, hub, leaves := star(6, DefaultWiFi())
		if attach {
			nw.SetFaults(FaultModel{})
			nw.SetLinkFaults(hub, leaves[0], FaultModel{})
		}
		var log bytes.Buffer
		for _, lf := range leaves {
			id := lf
			nw.SetHandler(lf, HandlerFunc(func(n *Network, _ NodeID, p []byte) {
				fmt.Fprintf(&log, "%d@%v:%x\n", id, n.Now(), p)
			}))
		}
		nw.Broadcast(hub, []byte("query"), 2)
		for i, lf := range leaves {
			nw.Send(hub, lf, []byte{byte(i)})
		}
		nw.Run(0)
		return log.String()
	}
	if run(false) != run(true) {
		t.Fatal("attaching a zero FaultModel changed the event sequence")
	}
}
