package netsim

import (
	"testing"
	"time"
)

// star builds a hub with n leaves and returns (net, hub, leaves).
func star(n int, model LinkModel) (*Network, NodeID, []NodeID) {
	nw := New(model, 1)
	hub := nw.AddNode(nil)
	leaves := make([]NodeID, n)
	for i := range leaves {
		leaves[i] = nw.AddNode(nil)
		nw.Link(hub, leaves[i])
	}
	return nw, hub, leaves
}

// chain builds a line a-b-c-... of n nodes.
func chain(n int, model LinkModel) (*Network, []NodeID) {
	nw := New(model, 1)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = nw.AddNode(nil)
		if i > 0 {
			nw.Link(ids[i-1], ids[i])
		}
	}
	return nw, ids
}

func TestUnicastDelivery(t *testing.T) {
	nw, hub, leaves := star(3, DefaultWiFi())
	var got []byte
	var from NodeID
	nw.SetHandler(leaves[1], HandlerFunc(func(_ *Network, f NodeID, p []byte) {
		from, got = f, p
	}))
	nw.Send(hub, leaves[1], []byte("hello"))
	nw.Run(0)
	if string(got) != "hello" {
		t.Fatalf("payload = %q", got)
	}
	if from != hub {
		t.Fatalf("from = %v, want hub %v", from, hub)
	}
	if nw.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestMultiHopRelayPreservesOrigin(t *testing.T) {
	nw, ids := chain(5, DefaultWiFi())
	var from NodeID = -1
	nw.SetHandler(ids[4], HandlerFunc(func(_ *Network, f NodeID, _ []byte) { from = f }))
	nw.Send(ids[0], ids[4], []byte("x"))
	nw.Run(0)
	if from != ids[0] {
		t.Fatalf("origin = %v, want %v (not the relay)", from, ids[0])
	}
	if d := nw.HopDistance(ids[0], ids[4]); d != 4 {
		t.Fatalf("hop distance = %d, want 4", d)
	}
}

func TestLatencyLinearInHops(t *testing.T) {
	// Fig 6h: transmission time increases roughly linearly with hop count.
	model := DefaultWiFi()
	model.JitterFrac = 0 // deterministic for the ratio check
	times := make([]time.Duration, 5)
	for hops := 1; hops <= 4; hops++ {
		nw, ids := chain(hops+1, model)
		var arrived time.Duration
		nw.SetHandler(ids[hops], HandlerFunc(func(n *Network, _ NodeID, _ []byte) {
			arrived = n.Now()
		}))
		nw.Send(ids[0], ids[hops], make([]byte, 200))
		nw.Run(0)
		times[hops] = arrived
	}
	for hops := 2; hops <= 4; hops++ {
		ratio := float64(times[hops]) / float64(times[1])
		if ratio < float64(hops)-0.3 || ratio > float64(hops)+0.3 {
			t.Errorf("latency ratio at %d hops = %.2f, want ≈%d", hops, ratio, hops)
		}
	}
}

func TestMediumSerializesTransmissions(t *testing.T) {
	// Two simultaneous sends must not overlap on the medium: completion of
	// the pair takes about twice one transmission. Per-hop latency is zeroed
	// so only medium occupancy matters.
	model := DefaultWiFi()
	model.JitterFrac = 0
	model.PropagationDelay = 0
	nw, hub, leaves := star(2, model)
	var last time.Duration
	for _, l := range leaves {
		nw.SetHandler(l, HandlerFunc(func(n *Network, _ NodeID, _ []byte) { last = n.Now() }))
	}
	payload := make([]byte, 1000)
	nw.Send(hub, leaves[0], payload)
	nw.Send(hub, leaves[1], payload)
	nw.Run(0)

	single := New(model, 1)
	h2 := single.AddNode(nil)
	l2 := single.AddNode(nil)
	single.Link(h2, l2)
	var one time.Duration
	single.SetHandler(l2, HandlerFunc(func(n *Network, _ NodeID, _ []byte) { one = n.Now() }))
	single.Send(h2, l2, payload)
	single.Run(0)

	if last < 2*one-time.Millisecond {
		t.Fatalf("two transmissions completed in %v, single takes %v — medium not serialized", last, one)
	}
}

func TestBroadcastReachesWithinTTL(t *testing.T) {
	nw, ids := chain(6, DefaultWiFi())
	reached := make(map[NodeID]int)
	for _, id := range ids[1:] {
		idCopy := id
		nw.SetHandler(id, HandlerFunc(func(_ *Network, _ NodeID, _ []byte) {
			reached[idCopy]++
		}))
	}
	nw.Broadcast(ids[0], []byte("que1"), 3)
	nw.Run(0)
	for i, id := range ids[1:] {
		hops := i + 1
		want := 0
		if hops <= 3 {
			want = 1
		}
		if reached[id] != want {
			t.Errorf("node at %d hops delivered %d times, want %d", hops, reached[id], want)
		}
	}
}

func TestBroadcastNoDuplicateDelivery(t *testing.T) {
	// Dense topology: hub plus triangle; flooding must deliver once per node.
	nw := New(DefaultWiFi(), 1)
	a := nw.AddNode(nil)
	b := nw.AddNode(nil)
	c := nw.AddNode(nil)
	d := nw.AddNode(nil)
	nw.Link(a, b)
	nw.Link(a, c)
	nw.Link(b, c)
	nw.Link(b, d)
	nw.Link(c, d)
	counts := map[NodeID]int{}
	for _, id := range []NodeID{b, c, d} {
		idCopy := id
		nw.SetHandler(id, HandlerFunc(func(_ *Network, _ NodeID, _ []byte) { counts[idCopy]++ }))
	}
	nw.Broadcast(a, []byte("q"), 4)
	nw.Run(0)
	for id, c := range counts {
		if c != 1 {
			t.Errorf("node %v delivered %d times", id, c)
		}
	}
	if len(counts) != 3 {
		t.Errorf("reached %d nodes, want 3", len(counts))
	}
}

func TestComputeSerializesPerNode(t *testing.T) {
	nw := New(DefaultWiFi(), 1)
	id := nw.AddNode(nil)
	other := nw.AddNode(nil)
	var done []time.Duration
	record := func(n *Network) { done = append(done, n.Now()) }
	nw.Compute(id, 10*time.Millisecond, func() { record(nw) })
	nw.Compute(id, 10*time.Millisecond, func() { record(nw) })
	nw.Compute(other, 10*time.Millisecond, func() { record(nw) })
	nw.Run(0)
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	// Same node serializes: 10ms then 20ms. Different node overlaps: 10ms.
	if done[0] != 10*time.Millisecond || done[1] != 10*time.Millisecond || done[2] != 20*time.Millisecond {
		t.Fatalf("completion times = %v, want [10ms 10ms 20ms]", done)
	}
}

func TestAfterOrdering(t *testing.T) {
	nw := New(DefaultWiFi(), 1)
	var order []int
	nw.After(20*time.Millisecond, func() { order = append(order, 2) })
	nw.After(10*time.Millisecond, func() { order = append(order, 1) })
	nw.After(10*time.Millisecond, func() { order = append(order, 3) }) // FIFO at same time
	nw.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunLimit(t *testing.T) {
	nw := New(DefaultWiFi(), 1)
	fired := false
	nw.After(time.Second, func() { fired = true })
	end := nw.Run(100 * time.Millisecond)
	if fired {
		t.Fatal("event past limit fired")
	}
	if end != 100*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	// Continuing the run executes the rest.
	nw.Run(0)
	if !fired {
		t.Fatal("event lost after limited run")
	}
}

func TestUnreachableDrops(t *testing.T) {
	nw := New(DefaultWiFi(), 1)
	a := nw.AddNode(nil)
	b := nw.AddNode(HandlerFunc(func(_ *Network, _ NodeID, _ []byte) {
		t.Fatal("unreachable node received message")
	}))
	nw.Send(a, b, []byte("x"))
	nw.Run(0)
	if nw.HopDistance(a, b) != -1 {
		t.Fatal("disconnected nodes have a hop distance")
	}
}

func TestStatsAccounting(t *testing.T) {
	model := DefaultWiFi()
	model.JitterFrac = 0
	nw, ids := chain(3, model)
	nw.Send(ids[0], ids[2], make([]byte, 100))
	nw.Run(0)
	st := nw.Stats()
	if st.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d", st.MessagesSent)
	}
	if st.Transmissions != 2 { // two hops
		t.Errorf("Transmissions = %d, want 2", st.Transmissions)
	}
	if st.BytesOnAir != 200 { // 100 B × 2 hops
		t.Errorf("BytesOnAir = %d, want 200", st.BytesOnAir)
	}
	if st.MediumBusy <= 0 {
		t.Error("MediumBusy not tracked")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		nw, hub, leaves := star(10, DefaultWiFi())
		var last time.Duration
		for _, l := range leaves {
			lc := l
			nw.SetHandler(lc, HandlerFunc(func(n *Network, _ NodeID, _ []byte) { last = n.Now() }))
			nw.Send(hub, lc, make([]byte, 300))
		}
		nw.Run(0)
		return last
	}
	if run() != run() {
		t.Fatal("identical seeds produced different timelines")
	}
}

// BLE returns a slower short-range model for heterogeneous-radio tests.
func bleModel() LinkModel {
	return LinkModel{
		PerMessage:       10 * time.Millisecond,
		BytesPerSecond:   30_000,
		PropagationDelay: 20 * time.Millisecond,
		JitterFrac:       0,
	}
}

func TestChannelsDoNotContend(t *testing.T) {
	// Two simultaneous transmissions on different channels overlap; on the
	// same channel they serialize.
	model := DefaultWiFi()
	model.JitterFrac = 0
	model.PropagationDelay = 0

	build := func(sameChannel bool) time.Duration {
		nw := New(model, 1)
		hub := nw.AddNode(nil)
		var last time.Duration
		for i := 0; i < 2; i++ {
			leaf := nw.AddNode(HandlerFunc(func(n *Network, _ NodeID, _ []byte) { last = n.Now() }))
			ch := DefaultChannel
			if !sameChannel {
				ch = Channel(i)
			}
			nw.LinkOn(hub, leaf, ch, model)
			nw.Send(hub, leaf, make([]byte, 1000))
		}
		nw.Run(0)
		return last
	}
	same := build(true)
	diff := build(false)
	if diff >= same {
		t.Fatalf("distinct channels (%v) should finish before shared channel (%v)", diff, same)
	}
	// Distinct channels finish in about one airtime.
	if diff > same*3/4 {
		t.Fatalf("channel separation too weak: %v vs %v", diff, same)
	}
}

func TestBridgingDeviceAcrossRadios(t *testing.T) {
	// subject —WiFi— bridge —BLE— sensor (§II-A bridging devices): the
	// message crosses both radios, paying each one's cost.
	wifi := DefaultWiFi()
	wifi.JitterFrac = 0
	nw := New(wifi, 1)
	subject := nw.AddNode(nil)
	bridge := nw.AddNode(nil)
	sensor := nw.AddNode(nil)
	nw.LinkOn(subject, bridge, 0, wifi)
	nw.LinkOn(bridge, sensor, 1, bleModel())

	var arrived time.Duration
	nw.SetHandler(sensor, HandlerFunc(func(n *Network, from NodeID, _ []byte) {
		if from != subject {
			t.Errorf("origin = %v", from)
		}
		arrived = n.Now()
	}))
	nw.Send(subject, sensor, make([]byte, 120))
	nw.Run(0)
	if arrived == 0 {
		t.Fatal("message did not cross the bridge")
	}
	// Must include the BLE hop's cost (≥ 10ms message + 20ms latency) on top
	// of the WiFi hop.
	if arrived < 80*time.Millisecond {
		t.Fatalf("arrival %v too fast for WiFi+BLE path", arrived)
	}
}

func TestBroadcastPerChannelTransmissions(t *testing.T) {
	// A bridging node flooding to neighbors on two channels transmits twice
	// (once per radio), not once.
	model := DefaultWiFi()
	model.JitterFrac = 0
	nw := New(model, 1)
	src := nw.AddNode(nil)
	a := nw.AddNode(HandlerFunc(func(*Network, NodeID, []byte) {}))
	b := nw.AddNode(HandlerFunc(func(*Network, NodeID, []byte) {}))
	nw.LinkOn(src, a, 0, model)
	nw.LinkOn(src, b, 1, bleModel())
	nw.Broadcast(src, []byte("q"), 1)
	nw.Run(0)
	if got := nw.Stats().Transmissions; got != 2 {
		t.Fatalf("transmissions = %d, want 2 (one per channel)", got)
	}
}

func TestUnlink(t *testing.T) {
	nw, hub, leaves := star(2, DefaultWiFi())
	if nw.HopDistance(hub, leaves[0]) != 1 {
		t.Fatal("setup")
	}
	nw.Unlink(hub, leaves[0])
	if nw.HopDistance(hub, leaves[0]) != -1 {
		t.Fatal("unlinked nodes still reachable")
	}
	if nw.HopDistance(hub, leaves[1]) != 1 {
		t.Fatal("unrelated link removed")
	}
	// Idempotent; unknown link ignored.
	nw.Unlink(hub, leaves[0])
	// Messages to the removed neighbor are dropped silently.
	delivered := false
	nw.SetHandler(leaves[0], HandlerFunc(func(*Network, NodeID, []byte) { delivered = true }))
	nw.Send(hub, leaves[0], []byte("x"))
	nw.Run(0)
	if delivered {
		t.Fatal("message crossed a removed link")
	}
}
