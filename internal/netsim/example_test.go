package netsim_test

import (
	"fmt"
	"time"

	"argus/internal/netsim"
)

// Example builds a two-room topology with a relay between them and sends a
// message across; the virtual clock advances by the modeled radio costs.
func Example() {
	model := netsim.LinkModel{
		PerMessage:     2 * time.Millisecond,
		BytesPerSecond: 100_000,
	} // no jitter: deterministic timing
	net := netsim.New(model, 1)

	phone := net.AddNode(nil)
	relay := net.AddNode(nil)
	lock := net.AddNode(netsim.HandlerFunc(func(n *netsim.Network, from netsim.NodeID, payload []byte) {
		fmt.Printf("lock got %d bytes from node %d at %v\n", len(payload), from, n.Now())
	}))
	net.Link(phone, relay)
	net.Link(relay, lock)

	net.Send(phone, lock, make([]byte, 100))
	net.Run(0)
	fmt.Println("hops:", net.HopDistance(phone, lock))
	// Output:
	// lock got 100 bytes from node 0 at 6ms
	// hops: 2
}
