package netsim

import (
	"strconv"
	"testing"

	"argus/internal/obs"
)

// TestLinkStatsAccounting checks the per-link byte/transmission fold: unicast
// traffic is attributed to its directed edge, broadcasts to the
// (transmitter, Broadcast) sentinel, and the totals reconcile with Stats.
func TestLinkStatsAccounting(t *testing.T) {
	nw, hub, leaves := star(3, DefaultWiFi())
	nw.SetHandler(leaves[0], HandlerFunc(func(*Network, NodeID, []byte) {}))
	nw.Send(hub, leaves[0], make([]byte, 100))
	nw.Send(hub, leaves[0], make([]byte, 50))
	nw.Send(leaves[0], hub, make([]byte, 25))
	nw.Broadcast(hub, make([]byte, 10), 1)
	nw.Run(0)

	ls := nw.LinkStats()
	if s := ls[LinkKey{From: hub, To: leaves[0]}]; s.Transmissions != 2 || s.Bytes != 150 {
		t.Errorf("hub→leaf0 = %+v, want 2 tx / 150 B", s)
	}
	if s := ls[LinkKey{From: leaves[0], To: hub}]; s.Transmissions != 1 || s.Bytes != 25 {
		t.Errorf("leaf0→hub = %+v, want 1 tx / 25 B", s)
	}
	if s := ls[LinkKey{From: hub, To: Broadcast}]; s.Transmissions != 1 || s.Bytes != 10 {
		t.Errorf("hub→broadcast = %+v, want 1 tx / 10 B", s)
	}

	var bytes int64
	var tx int
	for _, s := range ls {
		bytes += s.Bytes
		tx += s.Transmissions
	}
	st := nw.Stats()
	if bytes != st.BytesOnAir || tx != st.Transmissions {
		t.Errorf("link totals %d B / %d tx != stats %d B / %d tx",
			bytes, tx, st.BytesOnAir, st.Transmissions)
	}
}

// TestNetworkInstrument checks the registry fold: counters and histograms
// mirror Stats and LinkStats exactly, and drops are counted.
func TestNetworkInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	nw, hub, leaves := star(2, DefaultWiFi())
	nw.Instrument(reg)
	nw.Send(hub, leaves[1], make([]byte, 64))
	nw.Broadcast(hub, make([]byte, 16), 1)
	orphan := nw.AddNode(nil) // not linked: unicast from it is dropped
	nw.Send(orphan, hub, make([]byte, 8))
	nw.Run(0)

	st := nw.Stats()
	snap := reg.Snapshot()
	if m := snap.Get(obs.MNetBytesOnAir); m == nil || int64(m.Value) != st.BytesOnAir {
		t.Errorf("bytes-on-air = %+v, stats %d", m, st.BytesOnAir)
	}
	if m := snap.Get(obs.MNetTransmissions); m == nil || int(m.Value) != st.Transmissions {
		t.Errorf("transmissions = %+v, stats %d", m, st.Transmissions)
	}
	if m := snap.Get(obs.MNetMessages); m == nil || int(m.Value) != st.MessagesSent {
		t.Errorf("messages = %+v, stats %d", m, st.MessagesSent)
	}
	if st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
	if m := snap.Get(obs.MNetDrops); m == nil || m.Value != 1 {
		t.Errorf("drop counter = %+v, want 1", m)
	}
	if m := snap.Get(obs.MNetHopLatency); m == nil || int(m.Count) != st.Transmissions {
		t.Errorf("hop latency count = %+v, want %d", m, st.Transmissions)
	}
	if m := snap.Get(obs.MNetMediumWait); m == nil || int(m.Count) != st.Transmissions {
		t.Errorf("medium wait count = %+v, want %d", m, st.Transmissions)
	}
	for k, s := range nw.LinkStats() {
		to := "broadcast"
		if k.To != Broadcast {
			to = strconv.Itoa(int(k.To))
		}
		m := snap.Get(obs.MNetLinkBytes,
			obs.L("from", strconv.Itoa(int(k.From))), obs.L("to", to))
		if m == nil || int64(m.Value) != s.Bytes {
			t.Errorf("link %v metric = %+v, want %d B", k, m, s.Bytes)
		}
	}
}
