package netsim

import (
	"strconv"
	"time"

	"argus/internal/transport"
)

// This file adapts the simulator to the transport.Endpoint seam the protocol
// engines speak (internal/transport). The adapter is deliberately thin:
// every Endpoint call maps 1:1 onto the Network primitive the engines used
// to call directly, consumes no randomness, and schedules no extra events —
// so a fixed-seed run through the adapter is byte-identical to the
// pre-refactor direct coupling (locked by internal/exp's golden fingerprint
// test). Determinism holds because the simulator remains single-threaded:
// all deliveries, timers and Do closures execute on the goroutine driving
// Network.Run, which *is* the engines' event loop — no mailbox needed.

// AddrOf returns the transport address of a simulated node: its decimal ID.
func AddrOf(id NodeID) transport.Addr {
	return transport.Addr(strconv.Itoa(int(id)))
}

// NodeOf parses a transport address minted by AddrOf back into a NodeID.
func NodeOf(a transport.Addr) (NodeID, bool) {
	n, err := strconv.Atoi(string(a))
	if err != nil || n < 0 {
		return 0, false
	}
	return NodeID(n), true
}

// SimEndpoint is a node's transport.Endpoint view of the simulator.
type SimEndpoint struct {
	net  *Network
	node NodeID
}

var _ transport.Endpoint = (*SimEndpoint)(nil)

// NewEndpoint registers a fresh node and returns its endpoint. The node has
// no handler until Bind; link it to neighbors via Link/LinkOn using Node.
func (n *Network) NewEndpoint() *SimEndpoint {
	return &SimEndpoint{net: n, node: n.AddNode(nil)}
}

// EndpointAt wraps an existing node (e.g. to rotate engines on one address).
func (n *Network) EndpointAt(id NodeID) *SimEndpoint {
	return &SimEndpoint{net: n, node: id}
}

// Node returns the underlying simulator node ID (for Link/HopDistance).
func (e *SimEndpoint) Node() NodeID { return e.node }

// Addr implements transport.Endpoint.
func (e *SimEndpoint) Addr() transport.Addr { return AddrOf(e.node) }

// Now implements transport.Endpoint: the virtual clock.
func (e *SimEndpoint) Now() time.Duration { return e.net.Now() }

// Bind implements transport.Endpoint: installs h as the node's handler.
func (e *SimEndpoint) Bind(h transport.Handler) {
	e.net.SetHandler(e.node, HandlerFunc(func(_ *Network, from NodeID, payload []byte) {
		h.Handle(AddrOf(from), payload)
	}))
}

// Send implements transport.Endpoint. Addresses outside the simulation are
// dropped silently (radio semantics).
func (e *SimEndpoint) Send(to transport.Addr, payload []byte) {
	dst, ok := NodeOf(to)
	if !ok || int(dst) >= len(e.net.nodes) || dst == e.node {
		return
	}
	e.net.Send(e.node, dst, payload)
}

// Broadcast implements transport.Endpoint: the simulator's TTL-scoped flood.
func (e *SimEndpoint) Broadcast(payload []byte, ttl int) {
	e.net.Broadcast(e.node, payload, ttl)
}

// After implements transport.Endpoint: a virtual-clock timer.
func (e *SimEndpoint) After(d time.Duration, fn func()) { e.net.After(d, fn) }

// Compute implements transport.Endpoint: charges cost on the node's
// serialized virtual CPU.
func (e *SimEndpoint) Compute(cost time.Duration, fn func()) {
	e.net.Compute(e.node, cost, fn)
}

// Do implements transport.Endpoint. The caller owns the event loop between
// Run calls, so fn runs inline.
func (e *SimEndpoint) Do(fn func()) { fn() }

// Close implements transport.Endpoint: detaches the handler; the node stays
// in the topology as a passive relay.
func (e *SimEndpoint) Close() error {
	e.net.SetHandler(e.node, nil)
	return nil
}
