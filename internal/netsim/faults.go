package netsim

import (
	"math/rand"
	"time"
)

// This file is the fault-injection layer: the paper runs Argus on a real WiFi
// testbed (§IX) where frames are lost, delayed, reordered and duplicated, and
// devices reboot. FaultModel reproduces those conditions deterministically on
// the virtual clock so the protocol's retransmission machinery (internal/core)
// can be exercised and property-tested (internal/chaos).
//
// All fault decisions draw from a dedicated RNG (fault RNG) that is seeded
// independently of the airtime-jitter RNG: a network with no faults configured
// consumes zero fault draws and behaves byte-identically to the pre-fault
// simulator, and attaching faults never perturbs the jitter sequence.

// FaultModel describes the unreliability of one directed link (or, via
// SetFaults, of the whole network). The zero value is a perfect link.
type FaultModel struct {
	// Loss is the probability that one per-hop transmission is lost in
	// flight: the medium is occupied (the frame was on the air) but the
	// receiver never sees it. For broadcasts the draw is independent per
	// receiver, modeling independent radio reception.
	Loss float64
	// Corrupt is the probability that a delivered frame arrives with flipped
	// bytes. Receivers must survive and discard it (decode failure or MAC /
	// signature failure) — corruption is counted here and the resulting drop
	// is counted by the engines' malformed/rejected telemetry.
	Corrupt float64
	// Duplicate is the probability that a delivered frame is delivered twice
	// (link-layer retransmission with a lost ACK). Protocol handlers must be
	// idempotent.
	Duplicate float64
	// ReorderJitter adds a uniform extra delay in [0, ReorderJitter) to each
	// delivery, independent per frame, so frames overtake each other.
	ReorderJitter time.Duration
}

// Active reports whether the model injects any fault.
func (f FaultModel) Active() bool {
	return f.Loss > 0 || f.Corrupt > 0 || f.Duplicate > 0 || f.ReorderJitter > 0
}

// faultSeedMix decorrelates the default fault RNG stream from the airtime
// jitter stream seeded with the same value.
const faultSeedMix = 0x5eedfa17

// SetFaults installs f as the network-wide default fault model. Per-link
// overrides installed with SetLinkFaults take precedence.
func (n *Network) SetFaults(f FaultModel) { n.faults = f }

// SetLinkFaults overrides the fault model of the directed from→to hop
// (asymmetric links: a weak transmitter can lose more frames in one
// direction). It applies to per-hop transmissions on that edge, including the
// per-receiver legs of a broadcast.
func (n *Network) SetLinkFaults(from, to NodeID, f FaultModel) {
	if n.linkFaults == nil {
		n.linkFaults = make(map[LinkKey]FaultModel)
	}
	n.linkFaults[LinkKey{From: from, To: to}] = f
}

// FaultSeed reseeds the fault RNG. Two networks with the same topology, link
// seed, fault seed and fault models replay the identical fault schedule.
func (n *Network) FaultSeed(seed int64) { n.frng = rand.New(rand.NewSource(seed)) }

// SetDropFilter installs a programmable loss oracle invoked at delivery time:
// returning true drops the frame (counted as a fault loss). Chaos tests use
// it for targeted loss — e.g. "drop every RES2" — which a probabilistic model
// cannot express. Passing nil removes the filter.
func (n *Network) SetDropFilter(fn func(from, to NodeID, payload []byte) bool) { n.dropFilter = fn }

// Crash takes a node down for d of virtual time starting now: it neither
// transmits nor receives until recovery. Scheduled Compute work is unaffected
// (a modeling simplification: the window models radio outage, not CPU state).
func (n *Network) Crash(id NodeID, d time.Duration) {
	until := n.now + d
	if until > n.nodes[id].downUntil {
		n.nodes[id].downUntil = until
	}
}

// ScheduleCrash arranges a crash window [at, at+d) on the virtual clock.
func (n *Network) ScheduleCrash(id NodeID, at, d time.Duration) {
	if at < n.now {
		at = n.now
	}
	n.schedule(at, func() { n.Crash(id, d) })
}

// Down reports whether the node is inside a crash window.
func (n *Network) Down(id NodeID) bool { return n.nodeDown(id) }

func (n *Network) nodeDown(id NodeID) bool { return n.nodes[id].downUntil > n.now }

// faultsOn returns the fault model governing the directed cur→to hop.
func (n *Network) faultsOn(from, to NodeID) FaultModel {
	if f, ok := n.linkFaults[LinkKey{From: from, To: to}]; ok {
		return f
	}
	return n.faults
}

// drawLoss consumes one loss draw for the given hop model.
func (n *Network) drawLoss(f FaultModel) bool {
	return f.Loss > 0 && n.frng.Float64() < f.Loss
}

// corruptPayload returns a copy of p with 1–3 random byte flips.
func (n *Network) corruptPayload(p []byte) []byte {
	out := append([]byte(nil), p...)
	if len(out) == 0 {
		return out
	}
	flips := 1 + n.frng.Intn(3)
	for i := 0; i < flips; i++ {
		out[n.frng.Intn(len(out))] ^= byte(1 + n.frng.Intn(255))
	}
	return out
}

// scheduleFaulty schedules mk(payload) at `at`, applying the corruption,
// reorder-jitter and duplication faults of f. Loss is decided by the callers,
// whose bookkeeping differs between unicast relays and broadcast floods.
func (n *Network) scheduleFaulty(f FaultModel, at time.Duration, payload []byte, mk func([]byte) func()) {
	p := payload
	if f.Corrupt > 0 && n.frng.Float64() < f.Corrupt {
		p = n.corruptPayload(p)
		n.countFaultCorrupt()
	}
	if f.ReorderJitter > 0 {
		at += time.Duration(n.frng.Int63n(int64(f.ReorderJitter)))
	}
	n.schedule(at, mk(p))
	if f.Duplicate > 0 && n.frng.Float64() < f.Duplicate {
		n.countFaultDup()
		n.schedule(at+time.Duration(1+n.frng.Int63n(int64(2*time.Millisecond))), mk(p))
	}
}

// Fault counters: the Stats fields accumulate always; the obs counters fold
// the same events into the registry when Instrument was called.

func (n *Network) countFaultLost() {
	n.stats.FaultLost++
	if n.tel != nil {
		n.tel.faultLost.Inc()
	}
}

func (n *Network) countFaultCorrupt() {
	n.stats.FaultCorrupted++
	if n.tel != nil {
		n.tel.faultCorrupt.Inc()
	}
}

func (n *Network) countFaultDup() {
	n.stats.FaultDuplicated++
	if n.tel != nil {
		n.tel.faultDup.Inc()
	}
}

func (n *Network) countCrashDrop() {
	n.stats.CrashDrops++
	if n.tel != nil {
		n.tel.crashDrops.Inc()
	}
}
