package backendsvc

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/suite"
)

// fuzzSeedWAL produces the on-disk bytes of a real tenant WAL covering every
// effect-record op — the richest valid input the fuzzer can mutate from —
// plus the matching snapshot file.
func fuzzSeedWAL(f *testing.F) (walBlob, snapBlob []byte) {
	f.Helper()
	dir := f.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		f.Fatal(err)
	}
	tn, err := s.Create("seed", suite.S128, 0)
	if err != nil {
		f.Fatal(err)
	}
	snapBlob, err = os.ReadFile(filepath.Join(dir, "seed", "snap.bin"))
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	alice, _, err := tn.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		f.Fatal(err)
	}
	kiosk, _, err := tn.RegisterObject(ctx, "kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		f.Fatal(err)
	}
	pid, _, err := tn.AddPolicy(ctx, attr.MustParse("position=='staff'"), attr.MustParse("type=='kiosk'"), []string{"use"})
	if err != nil {
		f.Fatal(err)
	}
	gid, err := tn.CreateGroup(ctx, "fellows")
	if err != nil {
		f.Fatal(err)
	}
	if err := tn.AddSubjectToGroup(ctx, alice, gid); err != nil {
		f.Fatal(err)
	}
	if err := tn.AddCovertService(ctx, kiosk, gid, []string{"use"}); err != nil {
		f.Fatal(err)
	}
	if _, err := tn.UpdateSubjectAttrs(ctx, alice, attr.MustSet("position=manager")); err != nil {
		f.Fatal(err)
	}
	if _, err := tn.RemovePolicy(ctx, pid); err != nil {
		f.Fatal(err)
	}
	if _, err := tn.RevokeSubject(ctx, alice); err != nil {
		f.Fatal(err)
	}
	walBlob, err = os.ReadFile(filepath.Join(dir, "seed", "wal.log"))
	if err != nil {
		f.Fatal(err)
	}
	return walBlob, snapBlob
}

// FuzzWALReplay holds the recovery path to its contract: arbitrary bytes in
// snap.bin and wal.log must either recover a working tenant or fail with an
// error — never panic, never hang, never double-apply. A successful open
// must be stable: reopening the recovered state reproduces its fingerprint.
func FuzzWALReplay(f *testing.F) {
	walSeed, snapSeed := fuzzSeedWAL(f)
	f.Add(walSeed, snapSeed)
	f.Add([]byte{}, []byte{})
	f.Add(walSeed, []byte{})
	f.Add([]byte{}, snapSeed)
	f.Add(walSeed[:len(walSeed)/2], snapSeed) // torn tail
	for _, off := range []int{0, 4, 8, 9, len(walSeed) / 2, len(walSeed) - 1} {
		mut := append([]byte(nil), walSeed...)
		mut[off] ^= 0xFF
		f.Add(mut, snapSeed)
	}
	mutSnap := append([]byte(nil), snapSeed...)
	mutSnap[len(mutSnap)/2] ^= 0xFF
	f.Add(walSeed, mutSnap)

	f.Fuzz(func(t *testing.T, wal, snap []byte) {
		dir := t.TempDir()
		tdir := filepath.Join(dir, "t")
		if err := os.MkdirAll(tdir, 0o700); err != nil {
			t.Fatal(err)
		}
		if len(snap) > 0 {
			if err := os.WriteFile(filepath.Join(tdir, "snap.bin"), snap, 0o600); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(tdir, "wal.log"), wal, 0o600); err != nil {
			t.Fatal(err)
		}
		tn, err := openTenant("t", "k", tdir, suite.S128, nil)
		if err != nil {
			return // malformed state rejected cleanly: the contract held
		}
		// Recovered state must be stable across another open. openTenant
		// compacts fresh tenants only, so force one to canonicalize, then
		// the reopened twin must fingerprint identically.
		fp, err := tn.StateFingerprint(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := tn.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		tn2, err := openTenant("t", "k", tdir, suite.S128, nil)
		if err != nil {
			t.Fatalf("reopen of recovered state failed: %v", err)
		}
		fp2, err := tn2.StateFingerprint(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if fp != fp2 {
			t.Fatalf("recovered state not stable: %s vs %s", fp, fp2)
		}
	})
}
