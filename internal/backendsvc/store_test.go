package backendsvc

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/suite"
)

// churn drives one of every logged operation through the Service interface,
// so restart tests cover the whole effect-record zoo.
func churn(t *testing.T, svc backend.Service) (subject cert.ID) {
	t.Helper()
	ctx := context.Background()
	alice, _, err := svc.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	bob, _, err := svc.RegisterSubject(ctx, "bob", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	kiosk, _, err := svc.RegisterObject(ctx, "kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use", "admin"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterObject(ctx, "printer", backend.L2, attr.MustSet("type=printer"), []string{"print"}); err != nil {
		t.Fatal(err)
	}
	pid, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"), attr.MustParse("type=='printer'"), []string{"print"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"), attr.MustParse("type=='kiosk'"), []string{"use"}); err != nil {
		t.Fatal(err)
	}
	gid, err := svc.CreateGroup(ctx, "fellows")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, alice, gid); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, bob, gid); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddCovertService(ctx, kiosk, gid, []string{"admin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.UpdateSubjectAttrs(ctx, alice, attr.MustSet("position=manager")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RemovePolicy(ctx, pid); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RevokeSubject(ctx, bob); err != nil {
		t.Fatal(err)
	}
	return alice
}

func fingerprint(t *testing.T, svc backend.Service) string {
	t.Helper()
	fp, err := svc.StateFingerprint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestTenantReplayFingerprint is the heart of the durability story: kill
// (no Close, no compaction) after a full churn workload, reopen, and the
// replayed state must fingerprint byte-identically.
func TestTenantReplayFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Create("acme", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	alice := churn(t, tn)
	want := fingerprint(t, tn)

	// Simulated kill: reopen the directory without Close/compaction.
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := s2.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, tn2); got != want {
		t.Fatalf("replayed fingerprint differs:\n got %s\nwant %s", got, want)
	}
	// The replayed backend keeps working: same subject provisions fine.
	if _, err := tn2.ProvisionSubject(context.Background(), alice); err != nil {
		t.Fatal(err)
	}
	// And the auth key survived.
	if tn2.AuthKey() != tn.AuthKey() {
		t.Fatal("auth key lost across restart")
	}
}

// TestCompactionCrashWindows walks every crash window around compaction:
//
//	A: crash before compaction            (snapshot old, WAL full)
//	B: crash after snapshot rename,
//	   before WAL truncation              (snapshot new, WAL full — the
//	                                       double-apply trap)
//	C: crash after truncation             (snapshot new, WAL empty)
//
// All three must recover to the live fingerprint.
func TestCompactionCrashWindows(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Create("acme", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, tn)
	want := fingerprint(t, tn)

	walPath := filepath.Join(dir, "acme", "wal.log")
	snapPath := filepath.Join(dir, "acme", "snap.bin")
	walBlob, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(walBlob) == 0 {
		t.Fatal("test premise broken: WAL empty before compaction")
	}
	snapBefore, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(window string) {
		t.Helper()
		s, err := OpenStore(dir, nil)
		if err != nil {
			t.Fatalf("window %s: %v", window, err)
		}
		tn, err := s.Tenant("acme")
		if err != nil {
			t.Fatalf("window %s: %v", window, err)
		}
		if got := fingerprint(t, tn); got != want {
			t.Fatalf("window %s: fingerprint differs\n got %s\nwant %s", window, got, want)
		}
	}

	// Window A: genesis snapshot + full WAL (the state on disk right now).
	reopen("A")

	// Compact, then rewind the WAL file to its pre-compaction content:
	// exactly the on-disk state of a crash after the snapshot rename but
	// before the truncation. Replay must skip every record (seq ≤ header).
	if err := tn.Compact(); err != nil {
		t.Fatal(err)
	}
	snapAfter, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(snapAfter) == string(snapBefore) {
		t.Fatal("compaction did not rewrite the snapshot")
	}
	if err := os.WriteFile(walPath, walBlob, 0o600); err != nil {
		t.Fatal(err)
	}
	reopen("B")

	// Window C: truncation done (snapshot new, WAL empty).
	if err := os.WriteFile(walPath, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	reopen("C")

	// A crash mid-snapshot-write leaves only a temp file; it must be ignored.
	if err := os.WriteFile(snapPath+".tmp", []byte("torn snapshot garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	reopen("tmp")
}

// TestChurnAfterReplayDiverges ensures the replayed admin serial is correct:
// registering after a replay must not reuse certificate serials — the twin
// continues exactly where the original stopped.
func TestChurnAfterReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Create("acme", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, tn)
	serialBefore := tn.Backend().AdminSerial()

	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := s2.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := tn2.Backend().AdminSerial(); got != serialBefore {
		t.Fatalf("admin serial after replay %d, want %d", got, serialBefore)
	}
	// New registrations pick up fresh serials and survive another restart.
	ctx := context.Background()
	if _, _, err := tn2.RegisterSubject(ctx, "carol", attr.MustSet("position=staff")); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, tn2)
	s3, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn3, err := s3.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, tn3); got != want {
		t.Fatal("second-generation replay fingerprint differs")
	}
}

func TestStoreMultiTenantIsolation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Create("alpha", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create("beta", suite.S128, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, _, err := a.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	// The same human name registers independently per tenant; the beta
	// tenant cannot see alpha's subject.
	if _, _, err := b.RegisterSubject(ctx, "alice", attr.MustSet("position=staff")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProvisionSubject(ctx, id); err == nil {
		// Names hash to deterministic IDs, so alpha's alice and beta's alice
		// share an ID — but their credentials differ: distinct admins.
		aAnchor, _ := a.TrustAnchor(ctx)
		bAnchor, _ := b.TrustAnchor(ctx)
		if string(aAnchor.CACert) == string(bAnchor.CACert) {
			t.Fatal("tenants share a CA")
		}
	}
	if fingerprint(t, a) == fingerprint(t, b) {
		t.Fatal("tenants share state")
	}
	if a.AuthKey() == b.AuthKey() {
		t.Fatal("tenants share an auth key")
	}
	if b.Backend().Shards() != 2 {
		t.Fatalf("beta shards = %d, want 2", b.Backend().Shards())
	}

	// Duplicate namespace and auth failures carry typed errors.
	if _, err := s.Create("alpha", suite.S128, 0); !errors.Is(err, backend.ErrDuplicate) {
		t.Fatalf("duplicate tenant: %v", err)
	}
	if _, err := s.Auth("alpha", "wrong-key"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong key: %v", err)
	}
	if _, err := s.Auth("ghost", "x"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if _, err := s.Create("../evil", suite.S128, 0); !errors.Is(err, backend.ErrBadPredicate) {
		t.Fatalf("path-traversal name: %v", err)
	}

	// Restart reloads both tenants (shard config included).
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := s2.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("reloaded tenants %v", names)
	}
	b2, err := s2.Tenant("beta")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Backend().Shards() != 2 {
		t.Fatal("shard config lost across restart")
	}
}

// TestAutoCompaction: a tenant with a tiny compaction threshold folds its
// WAL into snapshots as it goes, and restart still fingerprints identically.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Create("acme", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	tn.mu.Lock()
	tn.compactBytes = 1 // compact after every single append
	tn.mu.Unlock()
	churn(t, tn)
	if tn.wal.Size() != 0 {
		t.Fatalf("WAL not compacted: %d bytes", tn.wal.Size())
	}
	want := fingerprint(t, tn)
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := s2.Tenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, tn2); got != want {
		t.Fatal("auto-compacted restart fingerprint differs")
	}
}
