package backendsvc

import (
	"path/filepath"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/update"
	"argus/internal/wire"
)

// dlqCrashRig wires one backend, one offline-able lock object with a
// recording agent, and a journaled distributor over the simulator — the
// minimal gateway a DLQ crash test needs.
type dlqCrashRig struct {
	t       *testing.T
	b       *backend.Backend
	net     *netsim.Network
	hub     netsim.NodeID
	sid     cert.ID
	oid     cert.ID
	ep      *netsim.SimEndpoint
	applied []uint64
	kinds   []update.Kind
}

func newDLQCrashRig(t *testing.T) *dlqCrashRig {
	t.Helper()
	r := &dlqCrashRig{t: t}
	var err error
	r.b, err = backend.New(suite.S128)
	if err != nil {
		t.Fatal(err)
	}
	r.sid, _, _ = r.b.RegisterSubject("alice", attr.MustSet("position=staff"))
	r.net = netsim.New(netsim.DefaultWiFi(), 17)
	r.hub = r.net.AddNode(nil)

	r.oid, _, err = r.b.RegisterObject("lock", backend.L2, attr.MustSet("type=lock"), []string{"open"})
	if err != nil {
		t.Fatal(err)
	}
	prov, _ := r.b.ProvisionObject(r.oid)
	eng := core.NewObject(prov, wire.V30, core.Costs{})
	agent := update.NewAgent(r.b.AdminPublic(), nil, func(n *update.Notification) {
		r.applied = append(r.applied, n.Seq)
		r.kinds = append(r.kinds, n.Kind)
	})
	r.ep = r.net.NewEndpoint()
	eng.Bind(agent.Wrap(r.ep))
	r.net.Link(r.hub, r.ep.Node())
	return r
}

// distributor builds a fresh journaled distributor — "fresh" is the point:
// each call models one gateway process generation.
func (r *dlqCrashRig) distributor(jl *DLQLog, opts ...update.DistributorOption) *update.Distributor {
	dep := r.net.NewEndpoint()
	r.net.Link(r.hub, dep.Node())
	opts = append([]update.DistributorOption{update.WithDLQJournal(jl)}, opts...)
	d := update.NewDistributor(r.b.Admin(), dep, opts...)
	d.Register(r.oid, r.ep.Addr())
	return d
}

// TestDLQJournalCrashReattach is the gateway-durability regression: letters
// parked for an offline device survive a gateway crash (no Close, state
// rebuilt only from the journal file), the destination comes back offline,
// the sequence counter resumes past the restored backlog, and a reattach
// redelivers everything — old and new — in order, exactly once.
func TestDLQJournalCrashReattach(t *testing.T) {
	r := newDLQCrashRig(t)
	path := filepath.Join(t.TempDir(), "dlq.log")

	jl, parked, err := OpenDLQLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 0 {
		t.Fatalf("fresh journal restored %d destinations", len(parked))
	}
	dist := r.distributor(jl)
	dist.MarkOffline(r.oid)
	if err := dist.RevokeSubject(r.sid, []cert.ID{r.oid}); err != nil {
		t.Fatal(err)
	}
	if err := dist.Reprovision([]cert.ID{r.oid}); err != nil {
		t.Fatal(err)
	}
	if err := dist.RevokeSubject(r.sid, []cert.ID{r.oid}); err != nil {
		t.Fatal(err)
	}
	if got := dist.DLQDepth(); got != 3 {
		t.Fatalf("depth before crash = %d, want 3", got)
	}
	if err := jl.Err(); err != nil {
		t.Fatalf("journal append failed: %v", err)
	}

	// Crash: the distributor (and its in-memory DLQ) is gone. Only the
	// journal file remains — every append was fsynced before the push
	// returned, so no Close is needed for the letters to be on disk.
	jl.Close()

	jl2, parked2, err := OpenDLQLog(path)
	if err != nil {
		t.Fatal(err)
	}
	q := parked2[r.oid]
	if len(q) != 3 {
		t.Fatalf("restored %d letters, want 3", len(q))
	}
	wantKinds := []update.Kind{update.KindRevokeSubject, update.KindReprovision, update.KindRevokeSubject}
	for i, n := range q {
		if n.Seq != uint64(i+1) || n.Kind != wantKinds[i] {
			t.Fatalf("restored letter %d: seq %d kind %v", i, n.Seq, n.Kind)
		}
	}

	dist2 := r.distributor(jl2)
	dist2.RestoreParked(parked2)
	if got := dist2.DLQDepth(); got != 3 {
		t.Fatalf("depth after restore = %d, want 3", got)
	}
	// The destination is restored offline: a new push parks behind the
	// backlog instead of jumping the queue, and its sequence continues past
	// the restored letters (seq 4, not 1 — the agent's replay check would
	// otherwise reject it).
	if err := dist2.Reprovision([]cert.ID{r.oid}); err != nil {
		t.Fatal(err)
	}
	if got := dist2.DLQDepth(); got != 4 {
		t.Fatalf("depth after post-restart push = %d, want 4 (destination not offline?)", got)
	}

	if got := dist2.Reattach(r.oid, ""); got != 4 {
		t.Fatalf("reattach redelivered %d, want 4", got)
	}
	r.net.Run(0)
	if len(r.applied) != 4 {
		t.Fatalf("agent applied %d, want 4: %v", len(r.applied), r.applied)
	}
	for i, seq := range r.applied {
		if seq != uint64(i+1) {
			t.Fatalf("effectuation order broken: seqs %v", r.applied)
		}
	}
	allKinds := append(wantKinds, update.KindReprovision)
	for i, k := range r.kinds {
		if k != allKinds[i] {
			t.Fatalf("kind order = %v, want %v", r.kinds, allKinds)
		}
	}

	// Exactly once: nothing left to redeliver, nothing double-applied.
	if got := dist2.Reattach(r.oid, ""); got != 0 {
		t.Fatalf("second reattach redelivered %d, want 0", got)
	}
	r.net.Run(0)
	if len(r.applied) != 4 {
		t.Fatalf("double effectuation after second reattach: %v", r.applied)
	}

	// The drain was journaled too: a crash after reattach restores nothing.
	jl2.Close()
	jl3, parked3, err := OpenDLQLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.Close()
	if len(parked3) != 0 {
		t.Fatalf("journal not drained: %d destinations survive reattach", len(parked3))
	}
}

// TestDLQJournalEvictionSurvivesCrash: the capacity bound's evictions are
// journaled, so a restore holds exactly the retained (newest) letters.
func TestDLQJournalEvictionSurvivesCrash(t *testing.T) {
	r := newDLQCrashRig(t)
	path := filepath.Join(t.TempDir(), "dlq.log")
	jl, _, err := OpenDLQLog(path)
	if err != nil {
		t.Fatal(err)
	}
	dist := r.distributor(jl, update.WithDLQCapacity(2))
	dist.MarkOffline(r.oid)
	for i := 0; i < 3; i++ {
		if err := dist.Reprovision([]cert.ID{r.oid}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dist.DLQDepth(); got != 2 {
		t.Fatalf("depth = %d, want cap 2", got)
	}
	jl.Close()

	jl2, parked, err := OpenDLQLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	q := parked[r.oid]
	if len(q) != 2 || q[0].Seq != 2 || q[1].Seq != 3 {
		seqs := []uint64{}
		for _, n := range q {
			seqs = append(seqs, n.Seq)
		}
		t.Fatalf("restored seqs %v, want [2 3] (newest retained)", seqs)
	}
}
