package backendsvc

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/obs"
	"argus/internal/suite"
)

// The versioned HTTP surface. Conventions:
//
//   - Every route lives under /v1/; breaking changes get /v2/, never a
//     silent mutation of /v1/ semantics.
//   - The tenant namespace rides in the X-Argus-Tenant header; the tenant's
//     bearer key in Authorization: Bearer <key>. GET /v1/anchor is the one
//     tenant route that skips the key: the trust anchor is public material.
//   - Tenant administration (create/list) authenticates against the
//     server's admin key instead.
//   - Errors return {"error": <message>, "code": <symbol>}; the code maps
//     1:1 onto the backend sentinel errors so internal/backendclient can
//     reconstruct errors.Is-compatible errors across the wire.
//   - Provision bundles travel as one base64 blob of the binary codec
//     (backend.EncodeSubjectProvision) inside the JSON envelope — the
//     bundle is mostly DER and key material with an exact binary form
//     already, and one codec keeps in-process and over-the-wire
//     deployments byte-identical.

// TenantHeader carries the tenant namespace.
const TenantHeader = "X-Argus-Tenant"

// errorBody is the wire form of a failed request.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// ErrorCode maps an error to its wire symbol and HTTP status.
func ErrorCode(err error) (code string, status int) {
	switch {
	case errors.Is(err, backend.ErrNotFound):
		return "not_found", http.StatusNotFound
	case errors.Is(err, ErrNoTenant):
		return "no_tenant", http.StatusNotFound
	case errors.Is(err, backend.ErrDuplicate):
		return "duplicate", http.StatusConflict
	case errors.Is(err, backend.ErrRevoked):
		return "revoked", http.StatusGone
	case errors.Is(err, backend.ErrBadPredicate):
		return "bad_predicate", http.StatusBadRequest
	case errors.Is(err, backend.ErrInvalidLevel):
		return "invalid_level", http.StatusBadRequest
	case errors.Is(err, backend.ErrNotCovert):
		return "not_covert", http.StatusBadRequest
	case errors.Is(err, ErrUnauthorized):
		return "unauthorized", http.StatusUnauthorized
	case errors.Is(err, backend.ErrCorruptState):
		return "corrupt", http.StatusInternalServerError
	}
	return "internal", http.StatusInternalServerError
}

// SentinelFor is the inverse of ErrorCode: the sentinel a wire code stands
// for (nil for "internal"). Shared with internal/backendclient so the
// mapping cannot drift between the two directions.
func SentinelFor(code string) error {
	switch code {
	case "not_found":
		return backend.ErrNotFound
	case "no_tenant":
		return ErrNoTenant
	case "duplicate":
		return backend.ErrDuplicate
	case "revoked":
		return backend.ErrRevoked
	case "bad_predicate":
		return backend.ErrBadPredicate
	case "invalid_level":
		return backend.ErrInvalidLevel
	case "not_covert":
		return backend.ErrNotCovert
	case "unauthorized":
		return ErrUnauthorized
	case "corrupt":
		return backend.ErrCorruptState
	}
	return nil
}

// reportJSON is the wire form of a backend.UpdateReport.
type reportJSON struct {
	NotifiedObjects  []string `json:"notified_objects,omitempty"`
	NotifiedSubjects []string `json:"notified_subjects,omitempty"`
	Total            int      `json:"total"`
}

func toReportJSON(rep backend.UpdateReport) reportJSON {
	out := reportJSON{Total: rep.Total()}
	for _, id := range rep.NotifiedObjects {
		out.NotifiedObjects = append(out.NotifiedObjects, id.String())
	}
	for _, id := range rep.NotifiedSubjects {
		out.NotifiedSubjects = append(out.NotifiedSubjects, id.String())
	}
	return out
}

// FromReportJSON reconstructs an UpdateReport (client side).
func (r reportJSON) toReport() (backend.UpdateReport, error) {
	var rep backend.UpdateReport
	for _, s := range r.NotifiedObjects {
		id, err := ParseID(s)
		if err != nil {
			return rep, err
		}
		rep.NotifiedObjects = append(rep.NotifiedObjects, id)
	}
	for _, s := range r.NotifiedSubjects {
		id, err := ParseID(s)
		if err != nil {
			return rep, err
		}
		rep.NotifiedSubjects = append(rep.NotifiedSubjects, id)
	}
	return rep, nil
}

// ParseID parses the hex form of a cert.ID.
func ParseID(s string) (cert.ID, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(cert.ID{}) {
		return cert.ID{}, fmt.Errorf("%w: bad entity id %q", backend.ErrBadPredicate, s)
	}
	var id cert.ID
	copy(id[:], raw)
	return id, nil
}

// Server serves the /v1 API over a tenant store.
type Server struct {
	store    *Store
	adminKey string
	reg      *obs.Registry
	now      func() time.Time
}

// NewServer builds a Server. adminKey guards tenant administration; an
// empty key disables those routes entirely (tenants must pre-exist).
func NewServer(store *Store, adminKey string, reg *obs.Registry) *Server {
	return &Server{store: store, adminKey: adminKey, reg: reg, now: time.Now}
}

// Handler returns the /v1 route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	// Tenant administration (server admin key).
	mux.HandleFunc("POST /v1/tenants", s.instrument("/v1/tenants", s.handleCreateTenant))
	mux.HandleFunc("GET /v1/tenants", s.instrument("/v1/tenants", s.handleListTenants))

	// Public per-tenant bootstrap material.
	mux.HandleFunc("GET /v1/anchor", s.instrument("/v1/anchor", s.tenantRoute(false, s.handleAnchor)))

	// Authenticated tenant surface.
	type route struct {
		pattern string
		h       func(*Tenant, http.ResponseWriter, *http.Request) error
	}
	for _, rt := range []route{
		{"POST /v1/subjects", s.handleRegisterSubject},
		{"POST /v1/objects", s.handleRegisterObject},
		{"GET /v1/subjects/{id}/provision", s.handleProvisionSubject},
		{"GET /v1/objects/{id}/provision", s.handleProvisionObject},
		{"POST /v1/subjects/{id}/revoke", s.handleRevokeSubject},
		{"PUT /v1/subjects/{id}/attrs", s.handleUpdateSubjectAttrs},
		{"POST /v1/policies", s.handleAddPolicy},
		{"DELETE /v1/policies/{id}", s.handleRemovePolicy},
		{"POST /v1/groups", s.handleCreateGroup},
		{"POST /v1/groups/{gid}/subjects", s.handleAddSubjectToGroup},
		{"POST /v1/groups/{gid}/covert", s.handleAddCovertService},
		{"GET /v1/fingerprint", s.handleFingerprint},
	} {
		pattern := rt.pattern
		h := rt.h
		path := strings.TrimPrefix(pattern, strings.Fields(pattern)[0]+" ")
		mux.HandleFunc(pattern, s.instrument(path, s.tenantRoute(true, h)))
	}
	return mux
}

// instrument wraps a handler with request counting and latency observation
// under the route pattern (never the raw path: bounded cardinality).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if s.reg == nil {
			return
		}
		s.reg.Counter(obs.MBackendsvcRequests, "API requests, by route pattern and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(sw.code))).Inc()
		s.reg.Histogram(obs.MBackendsvcLatency, "API request latency by route pattern.",
			obs.LatencyBuckets(), obs.L("route", route)).Observe(s.now().Sub(start).Seconds())
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code, status := ErrorCode(err)
	if status == http.StatusUnauthorized && s.reg != nil {
		s.reg.Counter(obs.MBackendsvcAuthFail, "Requests rejected for a missing or wrong bearer key.").Inc()
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

func bearer(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return ""
	}
	return strings.TrimPrefix(h, prefix)
}

// tenantRoute resolves the tenant named by the request header, checking its
// bearer key when authed is true.
func (s *Server) tenantRoute(authed bool, h func(*Tenant, http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.Header.Get(TenantHeader)
		if name == "" {
			s.writeError(w, fmt.Errorf("%w: missing %s header", ErrNoTenant, TenantHeader))
			return
		}
		var t *Tenant
		var err error
		if authed {
			t, err = s.store.Auth(name, bearer(r))
		} else {
			t, err = s.store.Tenant(name)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		if err := h(t, w, r); err != nil {
			s.writeError(w, err)
		}
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: request body: %v", backend.ErrBadPredicate, err)
	}
	return nil
}

// --- tenant administration ---

func (s *Server) adminAuth(r *http.Request) error {
	if s.adminKey == "" || bearer(r) != s.adminKey {
		return fmt.Errorf("%w: tenant administration", ErrUnauthorized)
	}
	return nil
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	if err := s.adminAuth(r); err != nil {
		s.writeError(w, err)
		return
	}
	var body struct {
		Name     string `json:"name"`
		Strength int    `json:"strength"`
		Shards   int    `json:"shards"`
	}
	if err := decodeBody(r, &body); err != nil {
		s.writeError(w, err)
		return
	}
	if body.Strength == 0 {
		body.Strength = int(suite.S128)
	}
	t, err := s.store.Create(body.Name, suite.Strength(body.Strength), body.Shards)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{
		"name": t.Name(), "auth_key": t.AuthKey(),
	})
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	if err := s.adminAuth(r); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.store.Names()})
}

// --- tenant surface ---

func (s *Server) handleAnchor(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	ta, err := t.TrustAnchor(r.Context())
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"strength":  int(ta.Strength),
		"ca_cert":   base64.StdEncoding.EncodeToString(ta.CACert),
		"admin_pub": base64.StdEncoding.EncodeToString(ta.AdminPub),
	})
	return nil
}

func (s *Server) handleRegisterSubject(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Name  string `json:"name"`
		Attrs string `json:"attrs"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	attrs, err := attr.ParseSet(body.Attrs)
	if err != nil {
		return fmt.Errorf("%w: %v", backend.ErrBadPredicate, err)
	}
	id, rep, err := t.RegisterSubject(r.Context(), body.Name, attrs)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id.String(), "report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleRegisterObject(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Name      string   `json:"name"`
		Level     int      `json:"level"`
		Attrs     string   `json:"attrs"`
		Functions []string `json:"functions"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	attrs, err := attr.ParseSet(body.Attrs)
	if err != nil {
		return fmt.Errorf("%w: %v", backend.ErrBadPredicate, err)
	}
	id, rep, err := t.RegisterObject(r.Context(), body.Name, backend.Level(body.Level), attrs, body.Functions)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id.String(), "report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleProvisionSubject(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	id, err := ParseID(r.PathValue("id"))
	if err != nil {
		return err
	}
	p, err := t.ProvisionSubject(r.Context(), id)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"blob": base64.StdEncoding.EncodeToString(backend.EncodeSubjectProvision(p)),
	})
	return nil
}

func (s *Server) handleProvisionObject(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	id, err := ParseID(r.PathValue("id"))
	if err != nil {
		return err
	}
	p, err := t.ProvisionObject(r.Context(), id)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"blob": base64.StdEncoding.EncodeToString(backend.EncodeObjectProvision(p)),
	})
	return nil
}

func (s *Server) handleRevokeSubject(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	id, err := ParseID(r.PathValue("id"))
	if err != nil {
		return err
	}
	rep, err := t.RevokeSubject(r.Context(), id)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleUpdateSubjectAttrs(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	id, err := ParseID(r.PathValue("id"))
	if err != nil {
		return err
	}
	var body struct {
		Attrs string `json:"attrs"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	attrs, err := attr.ParseSet(body.Attrs)
	if err != nil {
		return fmt.Errorf("%w: %v", backend.ErrBadPredicate, err)
	}
	rep, err := t.UpdateSubjectAttrs(r.Context(), id, attrs)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleAddPolicy(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Subject string   `json:"subject"`
		Object  string   `json:"object"`
		Rights  []string `json:"rights"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	subjPred, err := attr.Parse(body.Subject)
	if err != nil {
		return fmt.Errorf("%w: subject predicate: %v", backend.ErrBadPredicate, err)
	}
	objPred, err := attr.Parse(body.Object)
	if err != nil {
		return fmt.Errorf("%w: object predicate: %v", backend.ErrBadPredicate, err)
	}
	id, rep, err := t.AddPolicy(r.Context(), subjPred, objPred, body.Rights)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleRemovePolicy(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		return fmt.Errorf("%w: bad policy id", backend.ErrBadPredicate)
	}
	rep, err := t.RemovePolicy(r.Context(), id)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"report": toReportJSON(rep)})
	return nil
}

func (s *Server) handleCreateGroup(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Description string `json:"description"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	gid, err := t.CreateGroup(r.Context(), body.Description)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": uint64(gid)})
	return nil
}

func parseGroupID(r *http.Request) (groups.ID, error) {
	gid, err := strconv.ParseUint(r.PathValue("gid"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad group id", backend.ErrBadPredicate)
	}
	return groups.ID(gid), nil
}

func (s *Server) handleAddSubjectToGroup(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	gid, err := parseGroupID(r)
	if err != nil {
		return err
	}
	var body struct {
		Subject string `json:"subject"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	id, err := ParseID(body.Subject)
	if err != nil {
		return err
	}
	if err := t.AddSubjectToGroup(r.Context(), id, gid); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	return nil
}

func (s *Server) handleAddCovertService(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	gid, err := parseGroupID(r)
	if err != nil {
		return err
	}
	var body struct {
		Object    string   `json:"object"`
		Functions []string `json:"functions"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	id, err := ParseID(body.Object)
	if err != nil {
		return err
	}
	if err := t.AddCovertService(r.Context(), id, gid, body.Functions); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	return nil
}

func (s *Server) handleFingerprint(t *Tenant, w http.ResponseWriter, r *http.Request) error {
	fp, err := t.StateFingerprint(r.Context())
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]string{"fingerprint": fp})
	return nil
}
