package backendsvc

import (
	"fmt"
	"sync"

	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/update"
)

// DLQLog is the file-backed update.Journal: every dead-letter mutation —
// park, bound-eviction, drain — lands as one fsynced record in a WAL-framed
// log, so a gateway crash cannot lose a parked churn notification
// (DESIGN.md §11 bounded-never-silent, extended across restarts). Records
// arrive in distributor-lock order, so folding the log front to back
// reconstructs each destination's queue in original push order.
//
// Record payload, inside the standard WAL frame:
//
//	[u8 kind]  1=park 2=evict 3=drain
//	[raw  id]  destination cert.ID
//	[b32 let]  park only: Notification.Encode bytes
type DLQLog struct {
	mu  sync.Mutex
	wal *WAL
	err error
}

const (
	dlqOpPark  = 1
	dlqOpEvict = 2
	dlqOpDrain = 3
)

// OpenDLQLog opens (or creates) the log at path, folds its records into the
// surviving parked letters per destination, and compacts the file down to
// exactly those survivors — evictions and drains are resolved at open, so
// the log never grows past the live DLQ plus the churn since last open.
// The returned map feeds (*update.Distributor).RestoreParked.
func OpenDLQLog(path string) (*DLQLog, map[cert.ID][]*update.Notification, error) {
	wal, recs, err := OpenWAL(path)
	if err != nil {
		return nil, nil, err
	}
	parked := make(map[cert.ID][]*update.Notification)
	order := []cert.ID{} // map iteration is random; keep rewrite deterministic
	for _, rec := range recs {
		kind, to, letter, err := decodeDLQRecord(rec.Payload)
		if err != nil {
			// Same contract as tenant WAL recovery: an undecodable record
			// means the intact prefix ends here.
			break
		}
		switch kind {
		case dlqOpPark:
			n, ok, err := update.Decode(letter)
			if !ok || err != nil {
				continue // CRC passed but the envelope is foreign: drop the letter
			}
			if len(parked[to]) == 0 {
				order = append(order, to)
			}
			parked[to] = append(parked[to], n)
		case dlqOpEvict:
			if q := parked[to]; len(q) > 0 {
				parked[to] = q[1:]
			}
		case dlqOpDrain:
			delete(parked, to)
		}
	}
	for to, q := range parked {
		if len(q) == 0 {
			delete(parked, to)
		}
	}
	l := &DLQLog{wal: wal}
	// Rewrite the log as pure surviving parks. A crash mid-rewrite is safe:
	// replaying parks is idempotent at this layer (the agent's Seq check
	// guards effectuation), and the next open compacts again.
	if err := wal.Reset(); err != nil {
		wal.Close()
		return nil, nil, err
	}
	written := make(map[cert.ID]bool) // order may repeat a drained-then-reparked id
	for _, to := range order {
		if written[to] {
			continue
		}
		written[to] = true
		for _, n := range parked[to] {
			if _, err := wal.Append(encodeDLQRecord(dlqOpPark, to, n.Encode())); err != nil {
				wal.Close()
				return nil, nil, err
			}
		}
	}
	return l, parked, nil
}

func encodeDLQRecord(kind byte, to cert.ID, letter []byte) []byte {
	w := enc.NewWriter(1 + len(to) + 2 + len(letter))
	w.U8(kind)
	w.Raw(to[:])
	if kind == dlqOpPark {
		w.Bytes32(letter)
	}
	return w.Bytes()
}

func decodeDLQRecord(payload []byte) (kind byte, to cert.ID, letter []byte, err error) {
	r := enc.NewReader(payload)
	kind = r.U8()
	copy(to[:], r.Raw(len(to)))
	if kind == dlqOpPark {
		letter = r.Bytes32()
	}
	if kind < dlqOpPark || kind > dlqOpDrain {
		return 0, to, nil, fmt.Errorf("%w: dlq record kind %d", ErrCorruptWAL, kind)
	}
	if err := r.Done(); err != nil {
		return 0, to, nil, fmt.Errorf("%w: dlq record: %v", ErrCorruptWAL, err)
	}
	return kind, to, letter, nil
}

// Park implements update.Journal.
func (l *DLQLog) Park(to cert.ID, letter []byte) {
	l.append(encodeDLQRecord(dlqOpPark, to, letter))
}

// Evict implements update.Journal.
func (l *DLQLog) Evict(to cert.ID) { l.append(encodeDLQRecord(dlqOpEvict, to, nil)) }

// Drain implements update.Journal.
func (l *DLQLog) Drain(to cert.ID) { l.append(encodeDLQRecord(dlqOpDrain, to, nil)) }

func (l *DLQLog) append(payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.wal.Append(payload); err != nil {
		l.err = err // journal interface is fire-and-forget; surface via Err
	}
}

// Err reports the first append failure, if any. A journal that cannot write
// degrades to in-memory-only parking; the embedder decides whether that is
// fatal.
func (l *DLQLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close syncs and closes the underlying log file.
func (l *DLQLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Close()
}

var _ update.Journal = (*DLQLog)(nil)
