package backendsvc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/groups"
	"argus/internal/obs"
	"argus/internal/suite"
)

// Snapshot file format: [u8 version][u64 lastSeq][backend snapshot blob].
// lastSeq is the WAL sequence of the last operation the snapshot includes;
// replay skips records at or below it, which is what makes the
// snapshot-then-truncate compaction crash-safe in every window.
const snapFileVersion = 1

// DefaultCompactBytes is the WAL size past which a tenant compacts
// opportunistically after an append.
const DefaultCompactBytes = 4 << 20

// Tenant is one enterprise namespace: an isolated backend, its effect log
// and snapshot, and the bearer key that guards its API surface. Tenant
// implements backend.Service — mutations apply in memory, then the effect
// record is appended and fsynced before the call returns, so every
// acknowledged operation survives a crash (replayed on open, byte-identical
// state). All methods are safe for concurrent use.
type Tenant struct {
	name    string
	authKey string

	mu           sync.Mutex
	b            *backend.Backend
	wal          *WAL
	dir          string
	compactBytes int64

	reg *obs.Registry
}

// Name returns the tenant's namespace name.
func (t *Tenant) Name() string { return t.name }

// AuthKey returns the tenant's bearer key.
func (t *Tenant) AuthKey() string { return t.authKey }

// Backend exposes the underlying backend for in-process embedders (the
// daemon's gateway needs the admin key to sign notifications). Callers must
// not mutate through it — mutations would bypass the effect log.
func (t *Tenant) Backend() *backend.Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b
}

func (t *Tenant) snapPath() string { return filepath.Join(t.dir, "snap.bin") }
func (t *Tenant) walPath() string  { return filepath.Join(t.dir, "wal.log") }

// openTenant loads (or initializes) a tenant under dir: restore the
// snapshot if present, then replay every WAL record past the snapshot's
// sequence. Options apply to the restored backend (shards, clock,
// telemetry).
func openTenant(name, authKey, dir string, strength suite.Strength, reg *obs.Registry, opts ...backend.Option) (*Tenant, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	t := &Tenant{name: name, authKey: authKey, dir: dir, compactBytes: DefaultCompactBytes, reg: reg}

	var lastSeq uint64
	snapBlob, err := os.ReadFile(t.snapPath())
	switch {
	case err == nil:
		r := enc.NewReader(snapBlob)
		if v := r.U8(); v != snapFileVersion && r.Err() == nil {
			return nil, fmt.Errorf("%w: unsupported snapshot file version %d", backend.ErrCorruptState, v)
		}
		lastSeq = r.U64()
		blob := r.Bytes32()
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("%w: snapshot file: %v", backend.ErrCorruptState, err)
		}
		if t.b, err = backend.Restore(blob, opts...); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		if t.b, err = backend.New(strength, opts...); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	wal, recs, err := OpenWAL(t.walPath())
	if err != nil {
		return nil, err
	}
	t.wal = wal
	t.wal.SetSeq(lastSeq)
	replayed := 0
	for _, rec := range recs {
		if rec.Seq <= lastSeq {
			continue // already inside the snapshot (compaction crash window)
		}
		op, err := applyRecord(t.b, rec.Payload)
		if err != nil {
			wal.Close()
			return nil, err
		}
		replayed++
		t.count(obs.MBackendsvcWALReplays, "WAL records replayed at open, by op.", "op", op)
	}
	_ = replayed
	// A fresh tenant persists its genesis state immediately: the admin key
	// is random, so losing it would orphan every credential ever issued.
	if snapBlob == nil {
		if err := t.compactLocked(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return t, nil
}

func (t *Tenant) count(name, help, lk, lv string) {
	if t.reg == nil {
		return
	}
	t.reg.Counter(name, help, obs.L("tenant", t.name), obs.L(lk, lv)).Inc()
}

// logEffect appends one effect record and fsyncs. Called with t.mu held,
// after the in-memory mutation succeeded. An append failure is fatal for
// the tenant's durability story, so it surfaces as the operation's error —
// the state may be ahead of the log, and the caller should treat the
// tenant as failed.
func (t *Tenant) logEffect(payload []byte, op string) error {
	if _, err := t.wal.Append(payload); err != nil {
		return err
	}
	t.count(obs.MBackendsvcWALAppends, "Effect records appended to the WAL, by op.", "op", op)
	if t.wal.Size() >= t.compactBytes {
		return t.compactLocked()
	}
	return nil
}

// compactLocked snapshots the backend (with the WAL's current sequence in
// the header) atomically, then truncates the log. Crash windows:
//
//	before the rename  → old snapshot + full log: full replay, same state.
//	after the rename,
//	before truncation  → new snapshot + full log: replay skips seq ≤ header.
//	after truncation   → new snapshot + empty log.
//
// All three recover to the same fingerprint; the crash tests walk each one.
func (t *Tenant) compactLocked() error {
	w := enc.NewWriter(4096)
	w.U8(snapFileVersion)
	w.U64(t.wal.Seq())
	w.Bytes32(t.b.Snapshot())
	if err := writeFileAtomic(t.snapPath(), w.Bytes()); err != nil {
		return err
	}
	if err := t.wal.Reset(); err != nil {
		return err
	}
	if t.reg != nil {
		t.reg.Counter(obs.MBackendsvcCompactions,
			"Snapshot compactions (WAL truncated into a fresh snapshot).",
			obs.L("tenant", t.name)).Inc()
	}
	return nil
}

// Compact forces a snapshot compaction.
func (t *Tenant) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactLocked()
}

// Close compacts and releases the WAL file.
func (t *Tenant) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.compactLocked(); err != nil {
		t.wal.Close()
		return err
	}
	return t.wal.Close()
}

// --- backend.Service ---

func (t *Tenant) TrustAnchor(context.Context) (backend.TrustAnchor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return backend.TrustAnchor{
		Strength: t.b.Strength(),
		CACert:   t.b.CACert(),
		AdminPub: t.b.AdminPublic().Bytes(),
	}, nil
}

func (t *Tenant) RegisterSubject(_ context.Context, name string, attrs attr.Set) (cert.ID, backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, rep, err := t.b.RegisterSubject(name, attrs)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	payload, err := encodeRegister(opRegisterSubject, t.b, id, name, 0, attrs, nil)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	return id, rep, t.logEffect(payload, "register_subject")
}

func (t *Tenant) RegisterObject(_ context.Context, name string, level backend.Level, attrs attr.Set, functions []string) (cert.ID, backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, rep, err := t.b.RegisterObject(name, level, attrs, functions)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	payload, err := encodeRegister(opRegisterObject, t.b, id, name, level, attrs, functions)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	return id, rep, t.logEffect(payload, "register_object")
}

func (t *Tenant) ProvisionSubject(_ context.Context, id cert.ID) (*backend.SubjectProvision, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.ProvisionSubject(id)
}

func (t *Tenant) ProvisionObject(_ context.Context, id cert.ID) (*backend.ObjectProvision, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.ProvisionObject(id)
}

func (t *Tenant) AddPolicy(_ context.Context, subjectPred, objectPred *attr.Predicate, rights []string) (uint64, backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, rep, err := t.b.AddPolicy(subjectPred, objectPred, rights)
	if err != nil {
		return 0, backend.UpdateReport{}, err
	}
	return id, rep, t.logEffect(encodeAddPolicy(subjectPred, objectPred, rights), "add_policy")
}

func (t *Tenant) RemovePolicy(_ context.Context, id uint64) (backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep, err := t.b.RemovePolicy(id)
	if err != nil {
		return backend.UpdateReport{}, err
	}
	return rep, t.logEffect(encodeRemovePolicy(id), "remove_policy")
}

func (t *Tenant) RevokeSubject(_ context.Context, id cert.ID) (backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep, err := t.b.RevokeSubject(id)
	if err != nil {
		return backend.UpdateReport{}, err
	}
	return rep, t.logEffect(encodeRevokeSubject(t.b, id), "revoke_subject")
}

func (t *Tenant) UpdateSubjectAttrs(_ context.Context, id cert.ID, attrs attr.Set) (backend.UpdateReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep, err := t.b.UpdateSubjectAttrs(id, attrs)
	if err != nil {
		return backend.UpdateReport{}, err
	}
	return rep, t.logEffect(encodeUpdateSubjectAttrs(id, attrs), "update_subject_attrs")
}

func (t *Tenant) CreateGroup(_ context.Context, description string) (groups.ID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, err := t.b.Groups.CreateGroup(description)
	if err != nil {
		return 0, err
	}
	return g.ID(), t.logEffect(encodeCreateGroup(t.b, description), "create_group")
}

func (t *Tenant) AddSubjectToGroup(_ context.Context, subject cert.ID, gid groups.ID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.b.AddSubjectToGroup(subject, gid); err != nil {
		return err
	}
	return t.logEffect(encodeAddSubjectToGroup(t.b, subject, gid), "add_subject_to_group")
}

func (t *Tenant) AddCovertService(_ context.Context, object cert.ID, gid groups.ID, functions []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.b.AddCovertService(object, gid, functions); err != nil {
		return err
	}
	return t.logEffect(encodeAddCovertService(t.b, object, gid, functions), "add_covert_service")
}

func (t *Tenant) StateFingerprint(context.Context) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.StateFingerprint(), nil
}

var _ backend.Service = (*Tenant)(nil)
