package backendsvc

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"argus/internal/backend"
	"argus/internal/obs"
	"argus/internal/suite"
)

// ErrUnauthorized marks a missing or wrong bearer key (tenant or admin).
var ErrUnauthorized = errors.New("backendsvc: unauthorized")

// ErrNoTenant marks an unknown tenant namespace.
var ErrNoTenant = errors.New("backendsvc: no such tenant")

// tenantMeta is one row of tenants.json — the store's directory of
// namespaces. Auth keys live here (0600) alongside the snapshots, which
// already hold every private key the enterprise owns.
type tenantMeta struct {
	Name     string `json:"name"`
	AuthKey  string `json:"auth_key"`
	Strength int    `json:"strength"`
	Shards   int    `json:"shards,omitempty"`
}

// Store is the daemon's root: a directory of tenants, each in its own
// subdirectory (dir/<tenant>/{snap.bin,wal.log}) with its metadata in
// dir/tenants.json.
type Store struct {
	dir string
	reg *obs.Registry

	mu      sync.Mutex
	tenants map[string]*Tenant
	metas   map[string]tenantMeta
}

// OpenStore opens (creating if needed) a tenant store rooted at dir and
// loads every tenant listed in tenants.json, replaying their WALs.
func OpenStore(dir string, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		reg:     reg,
		tenants: make(map[string]*Tenant),
		metas:   make(map[string]tenantMeta),
	}
	blob, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var metas []tenantMeta
	if err := json.Unmarshal(blob, &metas); err != nil {
		return nil, fmt.Errorf("backendsvc: tenants.json: %w", err)
	}
	for _, m := range metas {
		t, err := s.open(m)
		if err != nil {
			return nil, fmt.Errorf("backendsvc: tenant %q: %w", m.Name, err)
		}
		s.tenants[m.Name] = t
		s.metas[m.Name] = m
	}
	s.gauge()
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "tenants.json") }

func (s *Store) open(m tenantMeta) (*Tenant, error) {
	opts := []backend.Option{}
	if s.reg != nil {
		opts = append(opts, backend.WithTelemetry(s.reg))
	}
	if m.Shards > 1 {
		opts = append(opts, backend.WithShards(m.Shards))
	}
	return openTenant(m.Name, m.AuthKey, filepath.Join(s.dir, m.Name), suite.Strength(m.Strength), s.reg, opts...)
}

func (s *Store) gauge() {
	if s.reg != nil {
		s.reg.Gauge(obs.MBackendsvcTenants, "Tenant namespaces loaded.").Set(int64(len(s.tenants)))
	}
}

// saveIndexLocked rewrites tenants.json atomically. Caller holds s.mu.
func (s *Store) saveIndexLocked() error {
	metas := make([]tenantMeta, 0, len(s.metas))
	for _, m := range s.metas {
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Name < metas[j].Name })
	blob, err := json.MarshalIndent(metas, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(s.indexPath(), blob)
}

// validTenantName keeps namespace names safe as path components.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		ok := c == '-' || c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Create provisions a new tenant namespace with a fresh random bearer key
// and a fresh enterprise backend, persisted immediately. shards < 1 keeps
// the single-shard default.
func (s *Store) Create(name string, strength suite.Strength, shards int) (*Tenant, error) {
	if !validTenantName(name) {
		return nil, fmt.Errorf("%w: invalid tenant name %q", backend.ErrBadPredicate, name)
	}
	if !strength.Valid() {
		return nil, fmt.Errorf("%w: invalid strength %d", backend.ErrBadPredicate, int(strength))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("%w: tenant %q", backend.ErrDuplicate, name)
	}
	var raw [24]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, err
	}
	m := tenantMeta{Name: name, AuthKey: hex.EncodeToString(raw[:]), Strength: int(strength), Shards: shards}
	t, err := s.open(m)
	if err != nil {
		return nil, err
	}
	s.tenants[name] = t
	s.metas[name] = m
	if err := s.saveIndexLocked(); err != nil {
		delete(s.tenants, name)
		delete(s.metas, name)
		t.Close()
		return nil, err
	}
	s.gauge()
	return t, nil
}

// Tenant returns a loaded tenant by name.
func (s *Store) Tenant(name string) (*Tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	return t, nil
}

// Auth returns the tenant iff key matches its bearer key.
func (s *Store) Auth(name, key string) (*Tenant, error) {
	t, err := s.Tenant(name)
	if err != nil {
		return nil, err
	}
	if key == "" || key != t.AuthKey() {
		return nil, fmt.Errorf("%w: tenant %q", ErrUnauthorized, name)
	}
	return t, nil
}

// Names lists loaded tenants in stable order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close compacts and closes every tenant, keeping the first error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, name := range s.namesLocked() {
		if err := s.tenants[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) namesLocked() []string {
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
