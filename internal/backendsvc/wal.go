// Package backendsvc promotes the in-process enterprise backend
// (internal/backend) to a durable, sharded, multi-tenant service: the §II-A
// "hierarchy of servers" run as one daemon. Each tenant (one enterprise
// namespace — a building, a campus, a customer) owns an isolated
// backend.Backend guarded by a bearer key, made durable by a write-ahead
// effect log with snapshot compaction, and exposed over the versioned /v1
// HTTP surface (http.go) that internal/backendclient speaks.
package backendsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The log uses a self-delimiting frame per record:
//
//	[u32 length][u32 crc32][u64 seq][payload]
//
// where length covers seq+payload and the CRC (IEEE) covers the same bytes.
// Appends are fsynced before the operation is acknowledged, so an
// acknowledged churn op survives a crash. A torn tail — the partial frame a
// crash mid-write leaves behind — fails the length or CRC check and replay
// stops at the last intact record: exactly the prefix of acknowledged
// operations. Sequence numbers are assigned by the WAL and keep increasing
// across compactions; the snapshot header records the last sequence it
// covers, so a crash between snapshot write and log truncation cannot
// double-apply (replay skips records at or below the snapshot's seq).

const walFrameHeader = 8 // u32 length + u32 crc32

// ErrCorruptWAL marks a log whose intact prefix ended (torn tail or bit rot).
// It is informational: recovery keeps the prefix and truncates the rest.
var ErrCorruptWAL = errors.New("backendsvc: corrupt WAL record")

// Record is one replayable entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// WAL is an append-only, fsynced effect log.
type WAL struct {
	f    *os.File
	path string
	seq  uint64 // last sequence number handed out
	size int64
}

// OpenWAL opens (creating if absent) the log at path and scans its intact
// record prefix. A torn or corrupt tail is truncated away — those records
// were never acknowledged. The returned records are in append order.
func OpenWAL(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, nil, err
	}
	recs, good, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail so the next append starts on a frame boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, size: good}
	if n := len(recs); n > 0 {
		w.seq = recs[n-1].Seq
	}
	return w, recs, nil
}

// scanWAL reads records until EOF or the first damaged frame, returning the
// intact records and the byte offset where the intact prefix ends.
func scanWAL(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs []Record
		off  int64
		hdr  [walFrameHeader]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, off, nil // clean EOF or torn header: stop here
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if length < 8 || length > 1<<30 {
			return recs, off, nil // nonsense length: torn tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err != nil {
			return recs, off, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return recs, off, nil // bit rot / torn rewrite
		}
		recs = append(recs, Record{
			Seq:     binary.BigEndian.Uint64(body[:8]),
			Payload: body[8:],
		})
		off += int64(walFrameHeader) + int64(length)
	}
}

// Append frames, writes and fsyncs one record, returning its sequence
// number. The record is durable when Append returns nil.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.seq++
	body := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(body[:8], w.seq)
	copy(body[8:], payload)
	frame := make([]byte, walFrameHeader+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[walFrameHeader:], body)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("backendsvc: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("backendsvc: wal fsync: %w", err)
	}
	w.size += int64(len(frame))
	return w.seq, nil
}

// Seq returns the last assigned sequence number.
func (w *WAL) Seq() uint64 { return w.seq }

// SetSeq fast-forwards the sequence counter (to a snapshot's last covered
// seq when the log itself is empty). Never moves backwards.
func (w *WAL) SetSeq(n uint64) {
	if n > w.seq {
		w.seq = n
	}
}

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Reset truncates the log after a successful snapshot compaction. The
// sequence counter keeps counting — snapshot headers rely on it.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync and rename, so readers see either the old or the new content —
// never a torn write. The crash-point tests drive every window around it.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
