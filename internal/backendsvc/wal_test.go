package backendsvc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWALAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL has %d records", len(recs))
	}
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma")}
	for i, p := range payloads {
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	w.Close()

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d: seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	// Sequence numbering continues where the log left off.
	if seq, _ := w2.Append([]byte("delta")); seq != 5 {
		t.Fatalf("post-reopen append seq %d, want 5", seq)
	}
}

// TestWALTornTail simulates a crash mid-append: the partial frame must be
// dropped, the intact prefix kept, and subsequent appends must work.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"one", "two", "three"} {
		if _, err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(blob) - 1; cut > len(blob)-14; cut-- {
		if err := os.WriteFile(path, blob[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		w, recs, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(recs))
		}
		// The torn tail is truncated; the next append lands cleanly.
		if seq, err := w.Append([]byte("four")); err != nil || seq != 3 {
			t.Fatalf("cut %d: append after recovery: seq %d err %v", cut, seq, err)
		}
		w.Close()
	}
}

// TestWALCorruptRecord: bit rot inside an earlier record stops replay at the
// last intact prefix — corrupt data is never applied.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	off, err := w.f.Seek(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	blob, _ := os.ReadFile(path)
	blob[off+walFrameHeader+9] ^= 0xFF // flip a payload byte of record 2
	os.WriteFile(path, blob, 0o600)

	_, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("recovered %d records, want only the intact prefix", len(recs))
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := writeFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("content %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("stray files: %v", ents)
	}
}
