package backendsvc

import (
	"fmt"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/enc"
	"argus/internal/groups"
	"argus/internal/suite"
)

// Effect records. Registration draws fresh random key material, so replaying
// a register op through the normal entry point would produce a different
// enterprise than the one that crashed — and a different StateFingerprint.
// The log therefore records *effects*:
//
//   - Registrations carry the issued private key, the certificate chain and
//     the post-op admin serial; replay installs them verbatim
//     (backend.InstallSubject / InstallObject + cert.Admin.RestoreSerial).
//   - Operations whose group side effects draw randomness (group creation,
//     membership changes, the re-key on revocation) carry the post-op
//     exported group registry; replay performs the structural change through
//     the public entry point, then overwrites group state from the blob.
//   - Purely deterministic operations (policy add/remove, attribute updates)
//     replay through the public entry points unchanged.
//
// The result is byte-identical state: the crash tests assert fingerprint
// equality, not approximate equivalence.

const (
	opRegisterSubject    byte = 1
	opRegisterObject     byte = 2
	opAddPolicy          byte = 3
	opRemovePolicy       byte = 4
	opRevokeSubject      byte = 5
	opUpdateSubjectAttrs byte = 6
	opCreateGroup        byte = 7
	opAddSubjectToGroup  byte = 8
	opAddCovertService   byte = 9
)

func opName(op byte) string {
	switch op {
	case opRegisterSubject:
		return "register_subject"
	case opRegisterObject:
		return "register_object"
	case opAddPolicy:
		return "add_policy"
	case opRemovePolicy:
		return "remove_policy"
	case opRevokeSubject:
		return "revoke_subject"
	case opUpdateSubjectAttrs:
		return "update_subject_attrs"
	case opCreateGroup:
		return "create_group"
	case opAddSubjectToGroup:
		return "add_subject_to_group"
	case opAddCovertService:
		return "add_covert_service"
	}
	return fmt.Sprintf("op(%d)", op)
}

func writeStrings(w *enc.Writer, ss []string) {
	w.U16(uint16(len(ss)))
	for _, s := range ss {
		w.String16(s)
	}
}

func readStrings(r *enc.Reader) []string {
	n := int(r.U16())
	if max := r.Remaining() / 2; n > max {
		n = max // each string costs at least its 2-byte length prefix
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String16())
	}
	return out
}

// encodeRegister serializes a subject or object registration effect: the
// post-op record plus the issued key material.
func encodeRegister(op byte, b *backend.Backend, id cert.ID, name string, level backend.Level, attrs attr.Set, functions []string) ([]byte, error) {
	key, certDER, err := b.KeyFor(id)
	if err != nil {
		return nil, err
	}
	w := enc.NewWriter(1024)
	w.U8(op)
	w.Raw(id[:])
	w.String16(name)
	w.String16(attrs.String())
	if op == opRegisterObject {
		w.U8(byte(level))
		writeStrings(w, functions)
	}
	w.Bytes16(key.Marshal())
	w.Bytes16(certDER)
	w.I64(b.AdminSerial())
	return w.Bytes(), nil
}

func encodeAddPolicy(subjectPred, objectPred *attr.Predicate, rights []string) []byte {
	w := enc.NewWriter(256)
	w.U8(opAddPolicy)
	w.String16(subjectPred.String())
	w.String16(objectPred.String())
	writeStrings(w, rights)
	return w.Bytes()
}

func encodeRemovePolicy(id uint64) []byte {
	w := enc.NewWriter(16)
	w.U8(opRemovePolicy)
	w.U64(id)
	return w.Bytes()
}

func encodeRevokeSubject(b *backend.Backend, id cert.ID) []byte {
	w := enc.NewWriter(512)
	w.U8(opRevokeSubject)
	w.Raw(id[:])
	w.Bytes32(b.ExportGroups())
	return w.Bytes()
}

func encodeUpdateSubjectAttrs(id cert.ID, attrs attr.Set) []byte {
	w := enc.NewWriter(128)
	w.U8(opUpdateSubjectAttrs)
	w.Raw(id[:])
	w.String16(attrs.String())
	return w.Bytes()
}

func encodeCreateGroup(b *backend.Backend, description string) []byte {
	w := enc.NewWriter(512)
	w.U8(opCreateGroup)
	w.String16(description)
	w.Bytes32(b.ExportGroups())
	return w.Bytes()
}

func encodeAddSubjectToGroup(b *backend.Backend, subject cert.ID, gid groups.ID) []byte {
	w := enc.NewWriter(512)
	w.U8(opAddSubjectToGroup)
	w.Raw(subject[:])
	w.U64(uint64(gid))
	w.Bytes32(b.ExportGroups())
	return w.Bytes()
}

func encodeAddCovertService(b *backend.Backend, object cert.ID, gid groups.ID, functions []string) []byte {
	w := enc.NewWriter(512)
	w.U8(opAddCovertService)
	w.Raw(object[:])
	w.U64(uint64(gid))
	writeStrings(w, functions)
	w.Bytes32(b.ExportGroups())
	return w.Bytes()
}

// applyRecord replays one effect record onto b. Returns the op name for
// telemetry.
func applyRecord(b *backend.Backend, payload []byte) (string, error) {
	if len(payload) == 0 {
		return "", fmt.Errorf("backendsvc: empty effect record")
	}
	op := payload[0]
	r := enc.NewReader(payload[1:])
	fail := func(err error) (string, error) {
		return opName(op), fmt.Errorf("backendsvc: replay %s: %w", opName(op), err)
	}
	switch op {
	case opRegisterSubject, opRegisterObject:
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		name := r.String16()
		attrText := r.String16()
		var level backend.Level
		var functions []string
		if op == opRegisterObject {
			level = backend.Level(r.U8())
			functions = readStrings(r)
		}
		keyBytes := r.Bytes16()
		certDER := r.Bytes16()
		adminSerial := r.I64()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		attrs, err := attr.ParseSet(attrText)
		if err != nil {
			return fail(err)
		}
		key, err := suite.UnmarshalSigningKey(keyBytes)
		if err != nil {
			return fail(err)
		}
		if op == opRegisterSubject {
			err = b.InstallSubject(backend.SubjectRecord{ID: id, Name: name, Attrs: attrs}, key, certDER, adminSerial)
		} else {
			err = b.InstallObject(id, name, level, attrs, functions, key, certDER, adminSerial)
		}
		if err != nil {
			return fail(err)
		}

	case opAddPolicy:
		subjText := r.String16()
		objText := r.String16()
		rights := readStrings(r)
		if err := r.Done(); err != nil {
			return fail(err)
		}
		subjPred, err := attr.Parse(subjText)
		if err != nil {
			return fail(err)
		}
		objPred, err := attr.Parse(objText)
		if err != nil {
			return fail(err)
		}
		if _, _, err := b.AddPolicy(subjPred, objPred, rights); err != nil {
			return fail(err)
		}

	case opRemovePolicy:
		id := r.U64()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		if _, err := b.RemovePolicy(id); err != nil {
			return fail(err)
		}

	case opRevokeSubject:
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		blob := r.Bytes32()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		if _, err := b.RevokeSubject(id); err != nil {
			return fail(err)
		}
		if err := b.ImportGroups(blob); err != nil {
			return fail(err)
		}

	case opUpdateSubjectAttrs:
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		attrText := r.String16()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		attrs, err := attr.ParseSet(attrText)
		if err != nil {
			return fail(err)
		}
		if _, err := b.UpdateSubjectAttrs(id, attrs); err != nil {
			return fail(err)
		}

	case opCreateGroup:
		_ = r.String16() // description: carried for audit; state comes from the blob
		blob := r.Bytes32()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		if err := b.ImportGroups(blob); err != nil {
			return fail(err)
		}

	case opAddSubjectToGroup:
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		_ = groups.ID(r.U64()) // structural membership comes from the blob
		blob := r.Bytes32()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		if err := b.ImportGroups(blob); err != nil {
			return fail(err)
		}

	case opAddCovertService:
		var id cert.ID
		copy(id[:], r.Raw(len(id)))
		gid := groups.ID(r.U64())
		functions := readStrings(r)
		blob := r.Bytes32()
		if err := r.Done(); err != nil {
			return fail(err)
		}
		// Group state from the blob first (the group must exist), then the
		// structural covert-function table on the object record. AddMember is
		// idempotent and draws no key material, so order is the whole story.
		if err := b.ImportGroups(blob); err != nil {
			return fail(err)
		}
		if err := b.AddCovertService(id, gid, functions); err != nil {
			return fail(err)
		}

	default:
		return fail(fmt.Errorf("unknown op"))
	}
	return opName(op), nil
}
