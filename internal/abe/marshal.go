package abe

import (
	"errors"
	"sort"

	"argus/internal/enc"
	"argus/internal/pairing"
)

// Wire encodings for distributing ABE material: the backend publishes the
// PublicKey, issues PrivateKeys to subjects over the secure bootstrap
// channel, and ships Ciphertexts (encrypted PROF variants) to objects.

const (
	policyLeafTag = 0
	policyNodeTag = 1
)

func encodePolicy(w *enc.Writer, p *Policy) {
	if p.IsLeaf() {
		w.U8(policyLeafTag)
		w.String16(p.Attr)
		return
	}
	w.U8(policyNodeTag)
	w.U16(uint16(p.Threshold))
	w.U16(uint16(len(p.Children)))
	for _, c := range p.Children {
		encodePolicy(w, c)
	}
}

func decodePolicy(r *enc.Reader, depth int) (*Policy, error) {
	if depth > 32 {
		return nil, errors.New("abe: policy tree too deep")
	}
	switch r.U8() {
	case policyLeafTag:
		return &Policy{Attr: r.String16()}, nil
	case policyNodeTag:
		k := int(r.U16())
		n := int(r.U16())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n < 1 || n > 4096 {
			return nil, errors.New("abe: invalid child count")
		}
		node := &Policy{Threshold: k, Children: make([]*Policy, n)}
		for i := 0; i < n; i++ {
			c, err := decodePolicy(r, depth+1)
			if err != nil {
				return nil, err
			}
			node.Children[i] = c
		}
		return node, nil
	default:
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, errors.New("abe: bad policy tag")
	}
}

// MarshalPolicy encodes an access tree.
func MarshalPolicy(p *Policy) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := enc.NewWriter(64)
	encodePolicy(w, p)
	return w.Bytes(), nil
}

// UnmarshalPolicy decodes and validates an access tree.
func UnmarshalPolicy(b []byte) (*Policy, error) {
	r := enc.NewReader(b)
	p, err := decodePolicy(r, 0)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Marshal encodes the system public key.
func (pk *PublicKey) Marshal() []byte {
	w := enc.NewWriter(1024)
	w.Raw(pk.G1.Marshal())
	w.Raw(pk.G2.Marshal())
	w.Raw(pk.H.Marshal())
	w.Raw(pk.Y.Marshal())
	return w.Bytes()
}

// UnmarshalPublicKey decodes and validates a system public key.
func UnmarshalPublicKey(b []byte) (*PublicKey, error) {
	r := enc.NewReader(b)
	g1b := r.Raw(pairing.G1MarshalLen)
	g2b := r.Raw(pairing.G2MarshalLen)
	hb := r.Raw(pairing.G1MarshalLen)
	yb := r.Raw(pairing.GTMarshalLen)
	if err := r.Done(); err != nil {
		return nil, err
	}
	g1, err := pairing.UnmarshalG1(g1b)
	if err != nil {
		return nil, err
	}
	g2, err := pairing.UnmarshalG2(g2b)
	if err != nil {
		return nil, err
	}
	h, err := pairing.UnmarshalG1(hb)
	if err != nil {
		return nil, err
	}
	y, err := pairing.UnmarshalGT(yb)
	if err != nil {
		return nil, err
	}
	return &PublicKey{G1: g1, G2: g2, H: h, Y: y}, nil
}

// Marshal encodes a subject's private key.
func (sk *PrivateKey) Marshal() []byte {
	w := enc.NewWriter(256)
	w.Raw(sk.D.Marshal())
	attrs := make([]string, 0, len(sk.Components))
	for a := range sk.Components {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	w.U16(uint16(len(attrs)))
	for _, a := range attrs {
		comp := sk.Components[a]
		w.String16(a)
		w.Raw(comp.Dj.Marshal())
		w.Raw(comp.Djp.Marshal())
	}
	return w.Bytes()
}

// UnmarshalPrivateKey decodes and validates a private key.
func UnmarshalPrivateKey(b []byte) (*PrivateKey, error) {
	r := enc.NewReader(b)
	db := r.Raw(pairing.G2MarshalLen)
	n := int(r.U16())
	if r.Err() != nil {
		return nil, r.Err()
	}
	d, err := pairing.UnmarshalG2(db)
	if err != nil {
		return nil, err
	}
	sk := &PrivateKey{D: d, Components: make(map[string]KeyComponent, n)}
	for i := 0; i < n; i++ {
		a := r.String16()
		djb := r.Raw(pairing.G2MarshalLen)
		djpb := r.Raw(pairing.G1MarshalLen)
		if r.Err() != nil {
			return nil, r.Err()
		}
		dj, err := pairing.UnmarshalG2(djb)
		if err != nil {
			return nil, err
		}
		djp, err := pairing.UnmarshalG1(djpb)
		if err != nil {
			return nil, err
		}
		if _, dup := sk.Components[a]; dup {
			return nil, errors.New("abe: duplicate attribute component")
		}
		sk.Components[a] = KeyComponent{Dj: dj, Djp: djp}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return sk, nil
}

// Marshal encodes a ciphertext. Leaf ciphers are serialized in tree order so
// the mapping can be rebuilt on decode.
func (ct *Ciphertext) Marshal() ([]byte, error) {
	polBytes, err := MarshalPolicy(ct.Policy)
	if err != nil {
		return nil, err
	}
	w := enc.NewWriter(1024)
	w.Bytes16(polBytes)
	w.Raw(ct.CTilde.Marshal())
	w.Raw(ct.C.Marshal())
	var leafErr error
	var walk func(p *Policy)
	walk = func(p *Policy) {
		if p.IsLeaf() {
			lc, ok := ct.Leaves[p]
			if !ok {
				leafErr = errors.New("abe: ciphertext missing leaf material")
				return
			}
			w.Raw(lc.Cy.Marshal())
			w.Raw(lc.Cyp.Marshal())
			return
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(ct.Policy)
	if leafErr != nil {
		return nil, leafErr
	}
	return w.Bytes(), nil
}

// UnmarshalCiphertext decodes and validates a ciphertext.
func UnmarshalCiphertext(b []byte) (*Ciphertext, error) {
	r := enc.NewReader(b)
	polBytes := r.Bytes16()
	ctb := r.Raw(pairing.GTMarshalLen)
	cb := r.Raw(pairing.G1MarshalLen)
	if r.Err() != nil {
		return nil, r.Err()
	}
	policy, err := UnmarshalPolicy(polBytes)
	if err != nil {
		return nil, err
	}
	ctilde, err := pairing.UnmarshalGT(ctb)
	if err != nil {
		return nil, err
	}
	c, err := pairing.UnmarshalG1(cb)
	if err != nil {
		return nil, err
	}
	ct := &Ciphertext{Policy: policy, CTilde: ctilde, C: c, Leaves: make(map[*Policy]LeafCipher)}
	var walkErr error
	var walk func(p *Policy)
	walk = func(p *Policy) {
		if walkErr != nil {
			return
		}
		if p.IsLeaf() {
			cyb := r.Raw(pairing.G1MarshalLen)
			cypb := r.Raw(pairing.G2MarshalLen)
			if r.Err() != nil {
				walkErr = r.Err()
				return
			}
			cy, err := pairing.UnmarshalG1(cyb)
			if err != nil {
				walkErr = err
				return
			}
			cyp, err := pairing.UnmarshalG2(cypb)
			if err != nil {
				walkErr = err
				return
			}
			ct.Leaves[p] = LeafCipher{Cy: cy, Cyp: cyp}
			return
		}
		for _, child := range p.Children {
			walk(child)
		}
	}
	walk(policy)
	if walkErr != nil {
		return nil, walkErr
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return ct, nil
}
