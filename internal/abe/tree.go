// Package abe implements Bethencourt–Sahai–Waters ciphertext-policy
// attribute-based encryption (CP-ABE, SP'07) over the BN254 pairing — the
// baseline the paper compares Argus Level 2 against (§VIII, Fig 6c).
//
// The backend encrypts each PROF variant under an access policy; a subject
// holds one key component per attribute and can decrypt exactly the variants
// whose policies her attributes satisfy. Decryption costs two pairings plus a
// GT exponentiation per policy attribute, which is why Fig 6(c) is linear in
// the attribute count — the cost structure emerges from the construction, it
// is not modeled.
package abe

import (
	"errors"
	"fmt"
	"math/big"

	"argus/internal/attr"
	"argus/internal/pairing"
)

// Policy is a threshold access tree: leaves name attributes; an interior node
// with n children and threshold k is satisfied when k children are satisfied.
// AND is k=n, OR is k=1.
type Policy struct {
	// Attr is the attribute token for leaves ("name:value"); empty for
	// interior nodes.
	Attr string
	// Threshold k (interior nodes only).
	Threshold int
	Children  []*Policy
}

// Leaf returns a leaf node for one attribute token.
func Leaf(attribute string) *Policy { return &Policy{Attr: attribute} }

// And returns a node satisfied only when all children are.
func And(children ...*Policy) *Policy {
	return &Policy{Threshold: len(children), Children: children}
}

// Or returns a node satisfied when any child is.
func Or(children ...*Policy) *Policy {
	return &Policy{Threshold: 1, Children: children}
}

// Threshold returns a k-of-n node.
func KofN(k int, children ...*Policy) *Policy {
	return &Policy{Threshold: k, Children: children}
}

// IsLeaf reports whether the node is a leaf.
func (p *Policy) IsLeaf() bool { return len(p.Children) == 0 }

// Validate checks structural sanity.
func (p *Policy) Validate() error {
	if p == nil {
		return errors.New("abe: nil policy")
	}
	if p.IsLeaf() {
		if p.Attr == "" {
			return errors.New("abe: leaf without attribute")
		}
		return nil
	}
	if p.Threshold < 1 || p.Threshold > len(p.Children) {
		return fmt.Errorf("abe: threshold %d of %d children", p.Threshold, len(p.Children))
	}
	for _, c := range p.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Leaves returns all leaf attribute tokens (with duplicates, in tree order).
func (p *Policy) Leaves() []string {
	if p.IsLeaf() {
		return []string{p.Attr}
	}
	var out []string
	for _, c := range p.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Satisfied reports whether the attribute set (as tokens) satisfies the tree.
func (p *Policy) Satisfied(attrs map[string]bool) bool {
	if p.IsLeaf() {
		return attrs[p.Attr]
	}
	n := 0
	for _, c := range p.Children {
		if c.Satisfied(attrs) {
			n++
		}
	}
	return n >= p.Threshold
}

// String renders the tree.
func (p *Policy) String() string {
	if p.IsLeaf() {
		return p.Attr
	}
	s := fmt.Sprintf("%d-of(", p.Threshold)
	for i, c := range p.Children {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	return s + ")"
}

// FromPredicate converts an attr predicate consisting of equality tests,
// AND and OR into an access tree; tokens are "name:value". It rejects
// negations, inequalities and numeric comparisons — CP-ABE policies are
// monotone, which is itself part of the §VIII comparison: Argus predicates
// can express negative conditions that ABE cannot enforce cheaply.
func FromPredicate(p *attr.Predicate) (*Policy, error) {
	m, err := p.Monotone()
	if err != nil {
		return nil, errors.New("abe: " + err.Error())
	}
	return fromMonotone(m), nil
}

func fromMonotone(m *attr.Monotone) *Policy {
	switch m.Op {
	case attr.MonotoneLeaf:
		return Leaf(m.Pair.String())
	case attr.MonotoneAnd:
		children := make([]*Policy, len(m.Children))
		for i, c := range m.Children {
			children[i] = fromMonotone(c)
		}
		return And(children...)
	default: // MonotoneOr
		children := make([]*Policy, len(m.Children))
		for i, c := range m.Children {
			children[i] = fromMonotone(c)
		}
		return Or(children...)
	}
}

// AttrTokens converts an attribute set into ABE tokens.
func AttrTokens(s attr.Set) []string {
	names := s.Names()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + ":" + s[n]
	}
	return out
}

// shareSecret splits secret s over the tree: each leaf receives its share
// q_leaf(0). Shamir per node: polynomial of degree k−1 with q(0) = parent
// share; child i (1-based) gets q(i).
func shareSecret(p *Policy, secret *big.Int, rng scalarSource, out map[*Policy]*big.Int) error {
	if p.IsLeaf() {
		out[p] = secret
		return nil
	}
	// coeffs[0] = secret, rest random.
	coeffs := make([]*big.Int, p.Threshold)
	coeffs[0] = secret
	for i := 1; i < p.Threshold; i++ {
		c, err := rng()
		if err != nil {
			return err
		}
		coeffs[i] = c
	}
	for i, child := range p.Children {
		x := big.NewInt(int64(i + 1))
		share := evalPoly(coeffs, x)
		if err := shareSecret(child, share, rng, out); err != nil {
			return err
		}
	}
	return nil
}

// evalPoly evaluates the polynomial with the given coefficients at x, mod r.
func evalPoly(coeffs []*big.Int, x *big.Int) *big.Int {
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, pairing.R)
	}
	return acc
}

// lagrangeAtZero returns Δ_{i,S}(0) = Π_{j∈S, j≠i} (0−j)/(i−j) mod r.
func lagrangeAtZero(i int64, set []int64) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	for _, j := range set {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(-j))
		num.Mod(num, pairing.R)
		den.Mul(den, big.NewInt(i-j))
		den.Mod(den, pairing.R)
	}
	den.ModInverse(den, pairing.R)
	num.Mul(num, den)
	return num.Mod(num, pairing.R)
}

type scalarSource func() (*big.Int, error)
