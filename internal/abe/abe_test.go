package abe

import (
	"math/big"
	"testing"

	"argus/internal/attr"
	"argus/internal/pairing"
)

// setupOnce shares one system across tests — Setup costs a pairing.
var (
	testPK *PublicKey
	testMK *MasterKey
)

func testSystem(t *testing.T) (*PublicKey, *MasterKey) {
	t.Helper()
	if testPK == nil {
		pk, mk, err := Setup()
		if err != nil {
			t.Fatal(err)
		}
		testPK, testMK = pk, mk
	}
	return testPK, testMK
}

func TestEncryptDecryptAND(t *testing.T) {
	pk, mk := testSystem(t)
	policy := And(Leaf("position:manager"), Leaf("department:X"))
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := KeyGen(pk, mk, []string{"position:manager", "department:X", "building:B1"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(pk, sk, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got != key {
		t.Fatal("recovered key differs")
	}
}

func TestDecryptFailsWithoutAttributes(t *testing.T) {
	pk, mk := testSystem(t)
	policy := And(Leaf("position:manager"), Leaf("department:X"))
	ct, _, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	// Only one of the two required attributes.
	sk, _ := KeyGen(pk, mk, []string{"position:manager"})
	if _, err := Decrypt(pk, sk, ct); err != ErrNotSatisfied {
		t.Fatalf("decryption with insufficient attributes: err = %v", err)
	}
	// No attributes at all.
	skEmpty, _ := KeyGen(pk, mk, nil)
	if _, err := Decrypt(pk, skEmpty, ct); err != ErrNotSatisfied {
		t.Fatalf("decryption with no attributes: err = %v", err)
	}
}

func TestCollusionResistance(t *testing.T) {
	// The classic ABE requirement: two users, each holding one of the two
	// required attributes, must not decrypt together. Their key components
	// are blinded by different per-user randomness r, so mixing fails.
	pk, mk := testSystem(t)
	policy := And(Leaf("a:1"), Leaf("b:2"))
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := KeyGen(pk, mk, []string{"a:1"})
	bob, _ := KeyGen(pk, mk, []string{"b:2"})
	// Colluders pool components: alice's D with both attribute components.
	frank := &PrivateKey{
		D:          alice.D,
		Components: map[string]KeyComponent{"a:1": alice.Components["a:1"], "b:2": bob.Components["b:2"]},
	}
	got, err := Decrypt(pk, frank, ct)
	if err == nil && got == key {
		t.Fatal("collusion recovered the key")
	}
}

func TestDecryptOR(t *testing.T) {
	pk, mk := testSystem(t)
	policy := Or(Leaf("position:manager"), Leaf("position:director"))
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	sk, _ := KeyGen(pk, mk, []string{"position:director"})
	got, err := Decrypt(pk, sk, ct)
	if err != nil || got != key {
		t.Fatalf("OR decryption failed: %v", err)
	}
}

func TestDecryptThreshold(t *testing.T) {
	pk, mk := testSystem(t)
	policy := KofN(2, Leaf("a:1"), Leaf("b:2"), Leaf("c:3"))
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two of three.
	sk, _ := KeyGen(pk, mk, []string{"a:1", "c:3"})
	got, err := Decrypt(pk, sk, ct)
	if err != nil || got != key {
		t.Fatalf("2-of-3 decryption failed: %v", err)
	}
	// One of three is not enough.
	sk1, _ := KeyGen(pk, mk, []string{"b:2"})
	if _, err := Decrypt(pk, sk1, ct); err != ErrNotSatisfied {
		t.Fatalf("1-of-3 decrypted: %v", err)
	}
}

func TestNestedPolicy(t *testing.T) {
	pk, mk := testSystem(t)
	// (position:manager AND department:X) OR clearance:top
	policy := Or(
		And(Leaf("position:manager"), Leaf("department:X")),
		Leaf("clearance:top"),
	)
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	byClearance, _ := KeyGen(pk, mk, []string{"clearance:top"})
	if got, err := Decrypt(pk, byClearance, ct); err != nil || got != key {
		t.Fatalf("clearance path failed: %v", err)
	}
	byRole, _ := KeyGen(pk, mk, []string{"position:manager", "department:X"})
	if got, err := Decrypt(pk, byRole, ct); err != nil || got != key {
		t.Fatalf("role path failed: %v", err)
	}
	neither, _ := KeyGen(pk, mk, []string{"position:manager", "department:Y"})
	if _, err := Decrypt(pk, neither, ct); err != ErrNotSatisfied {
		t.Fatalf("unauthorized decrypted: %v", err)
	}
}

func TestCiphertextsUseFreshKeys(t *testing.T) {
	pk, _ := testSystem(t)
	policy := Leaf("a:1")
	_, k1, _ := Encrypt(pk, policy)
	_, k2, _ := Encrypt(pk, policy)
	if k1 == k2 {
		t.Fatal("two encryptions produced the same key")
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []*Policy{
		{}, // leaf without attribute
		{Threshold: 0, Children: []*Policy{Leaf("a:1")}}, // k < 1
		{Threshold: 3, Children: []*Policy{Leaf("a:1")}}, // k > n
		And(Leaf("a:1"), &Policy{}),                      // bad child
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
	if err := And(Leaf("a:1"), Or(Leaf("b:2"), Leaf("c:3"))).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if _, _, err := Encrypt(testPK, &Policy{}); err == nil {
		t.Error("Encrypt accepted invalid policy")
	}
}

func TestFromPredicate(t *testing.T) {
	p, err := FromPredicate(attr.MustParse("position=='manager' && department=='X'"))
	if err != nil {
		t.Fatal(err)
	}
	leaves := p.Leaves()
	if len(leaves) != 2 || leaves[0] != "position:manager" || leaves[1] != "department:X" {
		t.Fatalf("leaves = %v", leaves)
	}
	if _, err := FromPredicate(attr.MustParse("position!='manager'")); err == nil {
		t.Fatal("non-monotone predicate accepted")
	}
	if _, err := FromPredicate(attr.MustParse("has(badge)")); err == nil {
		t.Fatal("presence test accepted (not expressible as an ABE leaf)")
	}
	if _, err := FromPredicate(attr.MustParse("true")); err == nil {
		t.Fatal("empty policy accepted")
	}
	single, err := FromPredicate(attr.MustParse("a=='1'"))
	if err != nil || !single.IsLeaf() {
		t.Fatalf("single-attribute predicate: %v, %v", single, err)
	}
	// Full monotone fragment: nested AND/OR converts and flattens.
	nested, err := FromPredicate(attr.MustParse(
		"(position=='manager' && department=='X') || clearance=='top' || clearance=='exec'"))
	if err != nil {
		t.Fatal(err)
	}
	if nested.Threshold != 1 || len(nested.Children) != 3 {
		t.Fatalf("nested tree = %v", nested)
	}
	if err := nested.Validate(); err != nil {
		t.Fatal(err)
	}
	// The converted tree's satisfaction agrees with the original predicate.
	for _, tc := range []struct {
		set  string
		want bool
	}{
		{"position=manager,department=X", true},
		{"clearance=exec", true},
		{"position=manager,department=Y", false},
		{"", false},
	} {
		s := attr.MustSet(tc.set)
		tokens := map[string]bool{}
		for _, tok := range AttrTokens(s) {
			tokens[tok] = true
		}
		if got := nested.Satisfied(tokens); got != tc.want {
			t.Errorf("Satisfied(%q) = %v, want %v", tc.set, got, tc.want)
		}
	}
}

func TestMonotoneConversionAgreesWithPredicate(t *testing.T) {
	preds := []string{
		"a=='1'",
		"a=='1' && b=='2'",
		"a=='1' || b=='2'",
		"(a=='1' || b=='2') && (c=='3' || d=='4')",
		"a=='1' && (b=='2' || (c=='3' && d=='4'))",
	}
	sets := []attr.Set{
		{}, attr.MustSet("a=1"), attr.MustSet("b=2,c=3"),
		attr.MustSet("a=1,c=3"), attr.MustSet("a=1,b=2,c=3,d=4"),
		attr.MustSet("d=4"), attr.MustSet("a=2,b=2"),
	}
	for _, text := range preds {
		p := attr.MustParse(text)
		m, err := p.Monotone()
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		tree := fromMonotone(m)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%q: invalid tree: %v", text, err)
		}
		for _, s := range sets {
			tokens := map[string]bool{}
			for _, tok := range AttrTokens(s) {
				tokens[tok] = true
			}
			if p.Eval(s) != tree.Satisfied(tokens) {
				t.Errorf("%q disagrees with ABE tree on %v", text, s)
			}
			if p.Eval(s) != m.Eval(s) {
				t.Errorf("%q disagrees with monotone form on %v", text, s)
			}
		}
	}
}

func TestAttrTokens(t *testing.T) {
	tokens := AttrTokens(attr.MustSet("position=manager,department=X"))
	if len(tokens) != 2 || tokens[0] != "department:X" || tokens[1] != "position:manager" {
		t.Fatalf("tokens = %v", tokens)
	}
}

func TestSecretSharingInternals(t *testing.T) {
	// Share a secret over 2-of-3 and recombine with Lagrange coefficients.
	secret := big.NewInt(424242)
	tree := KofN(2, Leaf("a"), Leaf("b"), Leaf("c"))
	shares := make(map[*Policy]*big.Int)
	src := func() (*big.Int, error) { return big.NewInt(777), nil }
	if err := shareSecret(tree, secret, src, shares); err != nil {
		t.Fatal(err)
	}
	// Recombine children 1 and 3.
	s1 := shares[tree.Children[0]]
	s3 := shares[tree.Children[2]]
	set := []int64{1, 3}
	got := new(big.Int)
	got.Add(got, new(big.Int).Mul(s1, lagrangeAtZero(1, set)))
	got.Add(got, new(big.Int).Mul(s3, lagrangeAtZero(3, set)))
	got.Mod(got, pairing.R)
	if got.Cmp(secret) != 0 {
		t.Fatalf("recombined %v, want %v", got, secret)
	}
}

func TestPolicyString(t *testing.T) {
	p := And(Leaf("a:1"), Or(Leaf("b:2"), Leaf("c:3")))
	want := "2-of(a:1, 1-of(b:2, c:3))"
	if p.String() != want {
		t.Fatalf("String = %q, want %q", p.String(), want)
	}
}
