package abe

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"

	"argus/internal/pairing"
)

// PublicKey is the system public key published by the authority (the Argus
// backend, in the comparison).
type PublicKey struct {
	G1 pairing.G1 // generator g1
	G2 pairing.G2 // generator g2
	H  pairing.G1 // h = g1^β
	Y  pairing.GT // Y = e(g1, g2)^α
}

// MasterKey is the authority's secret.
type MasterKey struct {
	Alpha, Beta *big.Int
}

// PrivateKey is a subject's decryption key: one component pair per attribute.
type PrivateKey struct {
	D pairing.G2 // g2^{(α+r)/β}
	// Components maps attribute token → (Dj, Dj').
	Components map[string]KeyComponent
}

// KeyComponent is the per-attribute key material.
type KeyComponent struct {
	Dj  pairing.G2 // g2^r · H2(j)^{rj}
	Djp pairing.G1 // g1^{rj}
}

// Attributes returns the tokens the key covers.
func (k *PrivateKey) Attributes() map[string]bool {
	out := make(map[string]bool, len(k.Components))
	for a := range k.Components {
		out[a] = true
	}
	return out
}

// Ciphertext encrypts a GT element under an access tree.
type Ciphertext struct {
	Policy *Policy
	CTilde pairing.GT // M · Y^s
	C      pairing.G1 // h^s
	// Leaves maps leaf node → (Cy, Cy') with shares q_y(0) of s.
	Leaves map[*Policy]LeafCipher
}

// LeafCipher is the per-leaf ciphertext material.
type LeafCipher struct {
	Cy  pairing.G1 // g1^{q_y(0)}
	Cyp pairing.G2 // H2(attr)^{q_y(0)}
}

func randomScalar() (*big.Int, error) {
	return pairing.RandomScalar(func(b []byte) error {
		_, err := rand.Read(b)
		return err
	})
}

// Setup generates the system keys.
func Setup() (*PublicKey, *MasterKey, error) {
	alpha, err := randomScalar()
	if err != nil {
		return nil, nil, err
	}
	beta, err := randomScalar()
	if err != nil {
		return nil, nil, err
	}
	g1 := pairing.G1Generator()
	g2 := pairing.G2Generator()
	pk := &PublicKey{
		G1: g1,
		G2: g2,
		H:  g1.ScalarMul(beta),
		Y:  pairing.Pair(g1, g2).Exp(alpha),
	}
	return pk, &MasterKey{Alpha: alpha, Beta: beta}, nil
}

// hashAttrToG2 maps an attribute token into G2.
func hashAttrToG2(attribute string) pairing.G2 {
	return pairing.HashToG2([]byte("abe-attr:" + attribute))
}

// KeyGen issues a private key for a set of attribute tokens.
func KeyGen(pk *PublicKey, mk *MasterKey, attributes []string) (*PrivateKey, error) {
	r, err := randomScalar()
	if err != nil {
		return nil, err
	}
	// D = g2^{(α+r)/β}
	exp := new(big.Int).Add(mk.Alpha, r)
	exp.Mul(exp, new(big.Int).ModInverse(mk.Beta, pairing.R))
	exp.Mod(exp, pairing.R)
	sk := &PrivateKey{
		D:          pk.G2.ScalarMul(exp),
		Components: make(map[string]KeyComponent, len(attributes)),
	}
	g2r := pk.G2.ScalarMul(r)
	for _, a := range attributes {
		rj, err := randomScalar()
		if err != nil {
			return nil, err
		}
		sk.Components[a] = KeyComponent{
			Dj:  g2r.Add(hashAttrToG2(a).ScalarMul(rj)),
			Djp: pk.G1.ScalarMul(rj),
		}
	}
	return sk, nil
}

// Encrypt encapsulates a fresh random GT element under the policy and
// returns the ciphertext together with the derived 32-byte symmetric key
// (KEM style: key = SHA-256(GT element)). In the Argus comparison the
// backend runs this for every PROF variant.
func Encrypt(pk *PublicKey, policy *Policy) (*Ciphertext, [32]byte, error) {
	var key [32]byte
	if err := policy.Validate(); err != nil {
		return nil, key, err
	}
	s, err := randomScalar()
	if err != nil {
		return nil, key, err
	}
	m, err := randomScalar()
	if err != nil {
		return nil, key, err
	}
	// The encapsulated message is Y^m (a random GT element with known form).
	msg := pk.Y.Exp(m)
	key = sha256.Sum256(msg.Bytes())

	shares := make(map[*Policy]*big.Int)
	if err := shareSecret(policy, s, randomScalar, shares); err != nil {
		return nil, key, err
	}
	ct := &Ciphertext{
		Policy: policy,
		CTilde: msg.Mul(pk.Y.Exp(s)),
		C:      pk.H.ScalarMul(s),
		Leaves: make(map[*Policy]LeafCipher, len(shares)),
	}
	for leaf, share := range shares {
		if !leaf.IsLeaf() {
			continue
		}
		ct.Leaves[leaf] = LeafCipher{
			Cy:  pk.G1.ScalarMul(share),
			Cyp: hashAttrToG2(leaf.Attr).ScalarMul(share),
		}
	}
	return ct, key, nil
}

// ErrNotSatisfied is returned when the key's attributes do not satisfy the
// ciphertext policy.
var ErrNotSatisfied = errors.New("abe: attributes do not satisfy the policy")

// Decrypt recovers the encapsulated symmetric key. Cost: two pairings per
// used leaf plus one GT exponentiation per tree level — linear in the number
// of policy attributes (Fig 6c).
func Decrypt(pk *PublicKey, sk *PrivateKey, ct *Ciphertext) ([32]byte, error) {
	var key [32]byte
	if !ct.Policy.Satisfied(sk.Attributes()) {
		return key, ErrNotSatisfied
	}
	a, ok := decryptNode(sk, ct, ct.Policy)
	if !ok {
		return key, ErrNotSatisfied
	}
	// A = e(g1,g2)^{r·s}; e(C, D) = e(g1,g2)^{(α+r)s};
	// msg = C~ / (e(C,D)/A) = C~ / e(g1,g2)^{αs}.
	eCD := pairing.Pair(ct.C, sk.D)
	msg := ct.CTilde.Mul(eCD.Mul(a.Inv()).Inv())
	return sha256.Sum256(msg.Bytes()), nil
}

// decryptNode returns e(g1,g2)^{r·q_x(0)} for a satisfied node x.
func decryptNode(sk *PrivateKey, ct *Ciphertext, node *Policy) (pairing.GT, bool) {
	if node.IsLeaf() {
		comp, ok := sk.Components[node.Attr]
		if !ok {
			return pairing.GTOne(), false
		}
		lc, ok := ct.Leaves[node]
		if !ok {
			return pairing.GTOne(), false
		}
		// e(Cy, Dj) / e(Dj', Cy')
		//   = e(g1^{q}, g2^r·H(j)^{rj}) / e(g1^{rj}, H(j)^{q})
		//   = e(g1,g2)^{r·q}.
		num := pairing.Pair(lc.Cy, comp.Dj)
		den := pairing.Pair(comp.Djp, lc.Cyp)
		return num.Mul(den.Inv()), true
	}
	// Gather satisfied children until the threshold is met.
	type part struct {
		idx int64
		val pairing.GT
	}
	var parts []part
	for i, child := range node.Children {
		if v, ok := decryptNode(sk, ct, child); ok {
			parts = append(parts, part{idx: int64(i + 1), val: v})
			if len(parts) == node.Threshold {
				break
			}
		}
	}
	if len(parts) < node.Threshold {
		return pairing.GTOne(), false
	}
	set := make([]int64, len(parts))
	for i, p := range parts {
		set[i] = p.idx
	}
	acc := pairing.GTOne()
	for _, p := range parts {
		acc = acc.Mul(p.val.Exp(lagrangeAtZero(p.idx, set)))
	}
	return acc, true
}
