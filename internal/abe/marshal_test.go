package abe

import (
	"bytes"
	"testing"
)

func TestPolicyMarshalRoundTrip(t *testing.T) {
	policies := []*Policy{
		Leaf("a:1"),
		And(Leaf("a:1"), Leaf("b:2")),
		Or(And(Leaf("a:1"), Leaf("b:2")), Leaf("c:3")),
		KofN(2, Leaf("a:1"), Leaf("b:2"), Leaf("c:3"), Leaf("d:4")),
	}
	for i, p := range policies {
		b, err := MarshalPolicy(p)
		if err != nil {
			t.Fatalf("policy %d: %v", i, err)
		}
		got, err := UnmarshalPolicy(b)
		if err != nil {
			t.Fatalf("policy %d: %v", i, err)
		}
		if got.String() != p.String() {
			t.Fatalf("policy %d: %q vs %q", i, got.String(), p.String())
		}
	}
}

func TestPolicyUnmarshalRejects(t *testing.T) {
	good, _ := MarshalPolicy(And(Leaf("a:1"), Leaf("b:2")))
	if _, err := UnmarshalPolicy(good[:len(good)-2]); err == nil {
		t.Error("truncated policy accepted")
	}
	if _, err := UnmarshalPolicy(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := UnmarshalPolicy([]byte{9}); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := UnmarshalPolicy(nil); err == nil {
		t.Error("empty policy accepted")
	}
	// Invalid threshold rejected via Validate.
	bad, _ := MarshalPolicy(And(Leaf("a:1"), Leaf("b:2")))
	bad[1+0] = 0 // threshold byte (U16 high byte is index 1)
	bad[2] = 9   // threshold 9 > 2 children
	if _, err := UnmarshalPolicy(bad); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	pk, _ := testSystem(t)
	b := pk.Marshal()
	got, err := UnmarshalPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.G1.Equal(pk.G1) || !got.G2.Equal(pk.G2) || !got.H.Equal(pk.H) || !got.Y.Equal(pk.Y) {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalPublicKey(b[:50]); err == nil {
		t.Error("short public key accepted")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	pk, mk := testSystem(t)
	sk, err := KeyGen(pk, mk, []string{"a:1", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	b := sk.Marshal()
	got, err := UnmarshalPrivateKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.D.Equal(sk.D) || len(got.Components) != 2 {
		t.Fatal("round trip mismatch")
	}
	for a, comp := range sk.Components {
		g, ok := got.Components[a]
		if !ok || !g.Dj.Equal(comp.Dj) || !g.Djp.Equal(comp.Djp) {
			t.Fatalf("component %q mismatch", a)
		}
	}
	if _, err := UnmarshalPrivateKey(b[:64]); err == nil {
		t.Error("truncated private key accepted")
	}
}

// TestCiphertextMarshalRoundTripAndDecrypt is the full distribution story:
// the backend serializes the encrypted profile variant, the object stores the
// bytes, the subject decrypts after deserialization.
func TestCiphertextMarshalRoundTripAndDecrypt(t *testing.T) {
	pk, mk := testSystem(t)
	policy := Or(And(Leaf("a:1"), Leaf("b:2")), Leaf("c:3"))
	ct, key, err := Encrypt(pk, policy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ct.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCiphertext(b)
	if err != nil {
		t.Fatal(err)
	}
	// Deserialized ciphertext must decrypt with a deserialized key.
	sk, _ := KeyGen(pk, mk, []string{"c:3"})
	sk2, err := UnmarshalPrivateKey(sk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := UnmarshalPublicKey(pk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Decrypt(pk2, sk2, got)
	if err != nil {
		t.Fatalf("decrypt after round trip: %v", err)
	}
	if recovered != key {
		t.Fatal("recovered key differs after serialization")
	}
	// Re-marshal is stable.
	b2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-marshal differs")
	}
	if _, err := UnmarshalCiphertext(b[:len(b)/2]); err == nil {
		t.Error("truncated ciphertext accepted")
	}
}
