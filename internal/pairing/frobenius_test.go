package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestFrobeniusAgreesWithExpP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		a := randFp12(rng)
		if !a.Frobenius().Equal(a.Exp(P)) {
			t.Fatal("Frobenius ≠ a^p")
		}
	}
}

func TestFrobeniusOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randFp12(rng)
	// π¹² = identity.
	if !a.FrobeniusN(12).Equal(a) {
		t.Fatal("π¹² ≠ id")
	}
	// π⁶ = conjugation.
	if !a.FrobeniusN(6).Equal(a.Conjugate()) {
		t.Fatal("π⁶ ≠ conjugation")
	}
	// π is multiplicative.
	b := randFp12(rng)
	if !a.Mul(b).Frobenius().Equal(a.Frobenius().Mul(b.Frobenius())) {
		t.Fatal("Frobenius not multiplicative")
	}
}

func TestConjugateIsCyclotomicInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := randFp12(rng)
	// Push f into the cyclotomic subgroup via the easy part.
	g := f.Conjugate().Mul(f.Inv())
	g = g.FrobeniusN(2).Mul(g)
	if !g.Mul(g.Conjugate()).IsOne() {
		t.Fatal("conjugation is not inversion in the cyclotomic subgroup")
	}
}

// TestFinalExpAgreesWithNaive is the oracle: the optimized easy/hard split
// must equal raising to the literal exponent (p¹²−1)/r.
func TestFinalExpAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 3; i++ {
		f := randFp12(rng)
		if f.IsZero() {
			continue
		}
		fast := finalExp(f)
		naive := f.Exp(finalExpPower)
		if !fast.Equal(naive) {
			t.Fatalf("iteration %d: optimized final exponentiation diverges from naive", i)
		}
	}
}

func TestBNParameterConsistency(t *testing.T) {
	// p and r are the BN polynomials at u: p(u) = 36u⁴+36u³+24u²+6u+1,
	// r(u) = 36u⁴+36u³+18u²+6u+1.
	u := bnU
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	u4 := new(big.Int).Mul(u3, u)
	poly := func(c4, c3, c2, c1, c0 int64) *big.Int {
		out := new(big.Int).Mul(big.NewInt(c4), u4)
		out.Add(out, new(big.Int).Mul(big.NewInt(c3), u3))
		out.Add(out, new(big.Int).Mul(big.NewInt(c2), u2))
		out.Add(out, new(big.Int).Mul(big.NewInt(c1), u))
		return out.Add(out, big.NewInt(c0))
	}
	if poly(36, 36, 24, 6, 1).Cmp(P) != 0 {
		t.Fatal("p ≠ p(u)")
	}
	if poly(36, 36, 18, 6, 1).Cmp(R) != 0 {
		t.Fatal("r ≠ r(u)")
	}
}
