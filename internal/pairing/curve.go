package pairing

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// G1 is a point on E(Fp): y² = x³ + 3, affine with an infinity flag. The
// group has prime order r (cofactor 1).
type G1 struct {
	X, Y *big.Int
	Inf  bool
}

// g1B is the curve coefficient b = 3.
var g1B = big.NewInt(3)

// G1Generator returns the standard generator (1, 2).
func G1Generator() G1 { return G1{X: big.NewInt(1), Y: big.NewInt(2)} }

// G1Infinity returns the identity element.
func G1Infinity() G1 { return G1{Inf: true} }

// IsOnCurve reports whether the point satisfies the curve equation.
func (p G1) IsOnCurve() bool {
	if p.Inf {
		return true
	}
	lhs := fpSqr(p.Y)
	rhs := fpAdd(fpMul(fpSqr(p.X), p.X), g1B)
	return lhs.Cmp(rhs) == 0
}

// Equal reports point equality.
func (p G1) Equal(q G1) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Neg returns −p.
func (p G1) Neg() G1 {
	if p.Inf {
		return p
	}
	return G1{X: new(big.Int).Set(p.X), Y: fpNeg(p.Y)}
}

// Add returns p + q (affine chord-and-tangent).
func (p G1) Add(q G1) G1 {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	if p.X.Cmp(q.X) == 0 {
		if p.Y.Cmp(q.Y) != 0 || p.Y.Sign() == 0 {
			return G1Infinity() // p = −q
		}
		return p.double()
	}
	lambda := fpMul(fpSub(q.Y, p.Y), fpInv(fpSub(q.X, p.X)))
	x3 := fpSub(fpSub(fpSqr(lambda), p.X), q.X)
	y3 := fpSub(fpMul(lambda, fpSub(p.X, x3)), p.Y)
	return G1{X: x3, Y: y3}
}

func (p G1) double() G1 {
	lambda := fpMul(fpMul(big.NewInt(3), fpSqr(p.X)), fpInv(fpAdd(p.Y, p.Y)))
	x3 := fpSub(fpSqr(lambda), fpAdd(p.X, p.X))
	y3 := fpSub(fpMul(lambda, fpSub(p.X, x3)), p.Y)
	return G1{X: x3, Y: y3}
}

// ScalarMul returns k·p (double-and-add; k taken mod r).
func (p G1) ScalarMul(k *big.Int) G1 {
	k = new(big.Int).Mod(k, R)
	out := G1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// HashToG1 maps arbitrary bytes to a G1 point by try-and-increment. The
// cofactor is 1, so any curve point already has order r.
func HashToG1(msg []byte) G1 {
	for ctr := uint32(0); ; ctr++ {
		var pre [4]byte
		binary.BigEndian.PutUint32(pre[:], ctr)
		h := sha256.Sum256(append(pre[:], msg...))
		x := new(big.Int).Mod(new(big.Int).SetBytes(h[:]), P)
		rhs := fpAdd(fpMul(fpSqr(x), x), g1B)
		if y := fpSqrt(rhs); y != nil {
			pt := G1{X: x, Y: y}
			if !pt.Inf {
				return pt
			}
		}
	}
}

// G2 is a point on the sextic twist E'(Fp2): y² = x³ + 3/ξ, restricted to the
// order-r subgroup.
type G2 struct {
	X, Y Fp2
	Inf  bool
}

// g2B is the twist coefficient b' = 3/ξ.
var g2B = Fp2One().MulFp(big.NewInt(3)).Mul(Xi.Inv())

// G2Generator returns the standard BN254 G2 generator (the alt_bn128
// constants).
func G2Generator() G2 {
	return G2{
		X: Fp2{
			bigFromDecimal("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
			bigFromDecimal("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
		},
		Y: Fp2{
			bigFromDecimal("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
			bigFromDecimal("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
		},
	}
}

// G2Infinity returns the identity element.
func G2Infinity() G2 { return G2{Inf: true} }

// IsOnCurve reports whether the point satisfies the twist equation.
func (p G2) IsOnCurve() bool {
	if p.Inf {
		return true
	}
	lhs := p.Y.Square()
	rhs := p.X.Square().Mul(p.X).Add(g2B)
	return lhs.Equal(rhs)
}

// Equal reports point equality.
func (p G2) Equal(q G2) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return p.X.Equal(q.X) && p.Y.Equal(q.Y)
}

// Neg returns −p.
func (p G2) Neg() G2 {
	if p.Inf {
		return p
	}
	return G2{X: p.X, Y: p.Y.Neg()}
}

// Add returns p + q.
func (p G2) Add(q G2) G2 {
	switch {
	case p.Inf:
		return q
	case q.Inf:
		return p
	}
	if p.X.Equal(q.X) {
		if !p.Y.Equal(q.Y) || p.Y.IsZero() {
			return G2Infinity()
		}
		return p.double()
	}
	lambda := q.Y.Sub(p.Y).Mul(q.X.Sub(p.X).Inv())
	x3 := lambda.Square().Sub(p.X).Sub(q.X)
	y3 := lambda.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G2{X: x3, Y: y3}
}

func (p G2) double() G2 {
	three := Fp2One().MulFp(big.NewInt(3))
	lambda := p.X.Square().Mul(three).Mul(p.Y.Add(p.Y).Inv())
	x3 := lambda.Square().Sub(p.X).Sub(p.X)
	y3 := lambda.Mul(p.X.Sub(x3)).Sub(p.Y)
	return G2{X: x3, Y: y3}
}

// ScalarMul returns k·p.
func (p G2) ScalarMul(k *big.Int) G2 {
	k = new(big.Int).Mod(k, R)
	out := G2Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// HashToG2 maps arbitrary bytes to the order-r subgroup of the twist:
// try-and-increment onto E'(Fp2), then cofactor clearing by 2p − r.
func HashToG2(msg []byte) G2 {
	for ctr := uint32(0); ; ctr++ {
		var pre [4]byte
		binary.BigEndian.PutUint32(pre[:], ctr)
		h0 := sha256.Sum256(append(append([]byte{0}, pre[:]...), msg...))
		h1 := sha256.Sum256(append(append([]byte{1}, pre[:]...), msg...))
		x := NewFp2(new(big.Int).SetBytes(h0[:]), new(big.Int).SetBytes(h1[:]))
		rhs := x.Square().Mul(x).Add(g2B)
		y, ok := rhs.Sqrt()
		if !ok {
			continue
		}
		// Cofactor clearing must use the raw cofactor 2p − r, not its
		// reduction mod r (ScalarMul reduces), so use the dedicated helper.
		pt := clearCofactorG2(G2{X: x, Y: y})
		if !pt.Inf {
			return pt
		}
	}
}

// clearCofactorG2 multiplies by the G2 cofactor (2p − r) without reducing the
// scalar mod r.
func clearCofactorG2(p G2) G2 {
	out := G2Infinity()
	k := g2Cofactor
	for i := k.BitLen() - 1; i >= 0; i-- {
		out = out.Add(out)
		if k.Bit(i) == 1 {
			out = out.Add(p)
		}
	}
	return out
}

// RandomScalar draws a uniform non-zero scalar mod r from the given byte
// source function (crypto/rand in production code paths).
func RandomScalar(read func([]byte) error) (*big.Int, error) {
	buf := make([]byte, 40) // 320 bits: negligible mod-r bias
	for {
		if err := read(buf); err != nil {
			return nil, err
		}
		k := new(big.Int).Mod(new(big.Int).SetBytes(buf), R)
		if k.Sign() != 0 {
			return k, nil
		}
	}
}
