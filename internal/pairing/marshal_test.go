package pairing

import (
	"bytes"
	"math/big"
	"testing"
)

func TestG1MarshalRoundTrip(t *testing.T) {
	pts := []G1{
		G1Generator(),
		G1Generator().ScalarMul(big.NewInt(123456789)),
		HashToG1([]byte("x")),
		G1Infinity(),
	}
	for i, p := range pts {
		b := p.Marshal()
		if len(b) != G1MarshalLen {
			t.Fatalf("pt %d: marshal length %d", i, len(b))
		}
		got, err := UnmarshalG1(b)
		if err != nil {
			t.Fatalf("pt %d: %v", i, err)
		}
		if !got.Equal(p) {
			t.Fatalf("pt %d: round trip mismatch", i)
		}
	}
}

func TestUnmarshalG1Rejects(t *testing.T) {
	good := G1Generator().Marshal()
	// Off curve.
	bad := append([]byte(nil), good...)
	bad[coordLen-1] ^= 1
	if _, err := UnmarshalG1(bad); err == nil {
		t.Error("off-curve point accepted")
	}
	// Wrong length.
	if _, err := UnmarshalG1(good[:10]); err == nil {
		t.Error("short encoding accepted")
	}
	// Coordinate ≥ p (non-canonical).
	over := make([]byte, G1MarshalLen)
	for i := 0; i < coordLen; i++ {
		over[i] = 0xFF
	}
	if _, err := UnmarshalG1(over); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	pts := []G2{
		G2Generator(),
		G2Generator().ScalarMul(big.NewInt(987654321)),
		HashToG2([]byte("y")),
		G2Infinity(),
	}
	for i, p := range pts {
		b := p.Marshal()
		if len(b) != G2MarshalLen {
			t.Fatalf("pt %d: marshal length %d", i, len(b))
		}
		got, err := UnmarshalG2(b)
		if err != nil {
			t.Fatalf("pt %d: %v", i, err)
		}
		if !got.Equal(p) {
			t.Fatalf("pt %d: round trip mismatch", i)
		}
	}
}

func TestUnmarshalG2RejectsSmallSubgroup(t *testing.T) {
	// Construct an on-twist point OUTSIDE the order-r subgroup: hash to the
	// curve but skip cofactor clearing.
	var raw G2
	for ctr := 0; ; ctr++ {
		x := NewFp2(big.NewInt(int64(ctr)), big.NewInt(3))
		rhs := x.Square().Mul(x).Add(g2B)
		if y, ok := rhs.Sqrt(); ok {
			raw = G2{X: x, Y: y}
			break
		}
	}
	if raw.ScalarMul(R).Equal(G2Infinity()) {
		t.Skip("random point landed in the subgroup; cannot exercise the check")
	}
	if _, err := UnmarshalG2(raw.Marshal()); err == nil {
		t.Fatal("small-subgroup G2 point accepted — invalid-curve style attacks possible")
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	b := e.Marshal()
	if len(b) != GTMarshalLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := UnmarshalGT(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(e) {
		t.Fatal("round trip mismatch")
	}
	if !bytes.Equal(got.Marshal(), b) {
		t.Fatal("re-marshal differs")
	}
	if !got.CheckOrder() {
		t.Fatal("pairing output fails order check")
	}
	// Zero element rejected.
	if _, err := UnmarshalGT(make([]byte, GTMarshalLen)); err == nil {
		t.Fatal("zero GT accepted")
	}
	if _, err := UnmarshalGT(b[:100]); err == nil {
		t.Fatal("short GT accepted")
	}
}
