package pairing

import "math/big"

// The extension tower, following the standard BN254 construction:
//
//	Fp2  = Fp[u]  / (u² + 1)
//	Fp6  = Fp2[v] / (v³ − ξ),  ξ = 9 + u
//	Fp12 = Fp6[w] / (w² − v)
//
// so that w⁶ = ξ, which is what the twist untwisting in pairing.go relies on.

// Fp2 is a + b·u with u² = −1.
type Fp2 struct {
	C0, C1 *big.Int
}

func fp2(c0, c1 int64) Fp2 {
	return Fp2{big.NewInt(c0).Mod(big.NewInt(c0), P), big.NewInt(c1).Mod(big.NewInt(c1), P)}
}

// Xi is the Fp6 non-residue ξ = 9 + u.
var Xi = fp2(9, 1)

// Fp2Zero returns the additive identity of Fp2.
func Fp2Zero() Fp2 { return Fp2{new(big.Int), new(big.Int)} }

// Fp2One returns the multiplicative identity of Fp2.
func Fp2One() Fp2 { return Fp2{big.NewInt(1), new(big.Int)} }

// NewFp2 builds an element from big integers (reduced mod p).
func NewFp2(c0, c1 *big.Int) Fp2 {
	return Fp2{new(big.Int).Mod(c0, P), new(big.Int).Mod(c1, P)}
}

func (a Fp2) IsZero() bool { return a.C0.Sign() == 0 && a.C1.Sign() == 0 }

func (a Fp2) Equal(b Fp2) bool { return a.C0.Cmp(b.C0) == 0 && a.C1.Cmp(b.C1) == 0 }

func (a Fp2) Add(b Fp2) Fp2 { return Fp2{fpAdd(a.C0, b.C0), fpAdd(a.C1, b.C1)} }
func (a Fp2) Sub(b Fp2) Fp2 { return Fp2{fpSub(a.C0, b.C0), fpSub(a.C1, b.C1)} }
func (a Fp2) Neg() Fp2      { return Fp2{fpNeg(a.C0), fpNeg(a.C1)} }

// Mul multiplies in Fp2: (a0+a1u)(b0+b1u) = (a0b0 − a1b1) + (a0b1 + a1b0)u.
func (a Fp2) Mul(b Fp2) Fp2 {
	t0 := fpMul(a.C0, b.C0)
	t1 := fpMul(a.C1, b.C1)
	c0 := fpSub(t0, t1)
	c1 := fpSub(fpMul(fpAdd(a.C0, a.C1), fpAdd(b.C0, b.C1)), fpAdd(t0, t1))
	return Fp2{c0, c1}
}

func (a Fp2) Square() Fp2 { return a.Mul(a) }

// MulFp scales by an Fp element.
func (a Fp2) MulFp(s *big.Int) Fp2 { return Fp2{fpMul(a.C0, s), fpMul(a.C1, s)} }

// Inv inverts: (a0+a1u)⁻¹ = (a0 − a1u)/(a0² + a1²).
func (a Fp2) Inv() Fp2 {
	norm := fpAdd(fpSqr(a.C0), fpSqr(a.C1))
	ninv := fpInv(norm)
	return Fp2{fpMul(a.C0, ninv), fpMul(fpNeg(a.C1), ninv)}
}

// Sqrt returns a square root of a and true, or false for non-residues.
// Uses the norm trick valid for p ≡ 3 (mod 4).
func (a Fp2) Sqrt() (Fp2, bool) {
	if a.IsZero() {
		return Fp2Zero(), true
	}
	if a.C1.Sign() == 0 {
		// Pure Fp element: either sqrt(a0) or u·sqrt(−a0).
		if s := fpSqrt(a.C0); s != nil {
			return Fp2{s, new(big.Int)}, true
		}
		if s := fpSqrt(fpNeg(a.C0)); s != nil {
			return Fp2{new(big.Int), s}, true
		}
		return Fp2{}, false
	}
	norm := fpAdd(fpSqr(a.C0), fpSqr(a.C1))
	lambda := fpSqrt(norm)
	if lambda == nil {
		return Fp2{}, false
	}
	for _, l := range []*big.Int{lambda, fpNeg(lambda)} {
		delta := fpMul(fpAdd(a.C0, l), inv2)
		x0 := fpSqrt(delta)
		if x0 == nil || x0.Sign() == 0 {
			continue
		}
		x1 := fpMul(a.C1, fpInv(fpAdd(x0, x0)))
		cand := Fp2{x0, x1}
		if cand.Square().Equal(a) {
			return cand, true
		}
	}
	return Fp2{}, false
}

// Fp6 is b0 + b1·v + b2·v² over Fp2 with v³ = ξ.
type Fp6 struct {
	B0, B1, B2 Fp2
}

// Fp6Zero returns the additive identity of Fp6.
func Fp6Zero() Fp6 { return Fp6{Fp2Zero(), Fp2Zero(), Fp2Zero()} }

// Fp6One returns the multiplicative identity of Fp6.
func Fp6One() Fp6 { return Fp6{Fp2One(), Fp2Zero(), Fp2Zero()} }

func (a Fp6) IsZero() bool { return a.B0.IsZero() && a.B1.IsZero() && a.B2.IsZero() }
func (a Fp6) Equal(b Fp6) bool {
	return a.B0.Equal(b.B0) && a.B1.Equal(b.B1) && a.B2.Equal(b.B2)
}

func (a Fp6) Add(b Fp6) Fp6 { return Fp6{a.B0.Add(b.B0), a.B1.Add(b.B1), a.B2.Add(b.B2)} }
func (a Fp6) Sub(b Fp6) Fp6 { return Fp6{a.B0.Sub(b.B0), a.B1.Sub(b.B1), a.B2.Sub(b.B2)} }
func (a Fp6) Neg() Fp6      { return Fp6{a.B0.Neg(), a.B1.Neg(), a.B2.Neg()} }

// Mul multiplies with the v³ = ξ reduction, using the Karatsuba/Toom-style
// interpolation of Devegili et al.: 6 Fp2 multiplications instead of the
// schoolbook 9. Tests cross-check against mulSchoolbook.
func (a Fp6) Mul(b Fp6) Fp6 {
	v0 := a.B0.Mul(b.B0)
	v1 := a.B1.Mul(b.B1)
	v2 := a.B2.Mul(b.B2)
	// (a1+a2)(b1+b2) − v1 − v2 = a1b2 + a2b1
	t12 := a.B1.Add(a.B2).Mul(b.B1.Add(b.B2)).Sub(v1).Sub(v2)
	// (a0+a1)(b0+b1) − v0 − v1 = a0b1 + a1b0
	t01 := a.B0.Add(a.B1).Mul(b.B0.Add(b.B1)).Sub(v0).Sub(v1)
	// (a0+a2)(b0+b2) − v0 − v2 = a0b2 + a2b0
	t02 := a.B0.Add(a.B2).Mul(b.B0.Add(b.B2)).Sub(v0).Sub(v2)
	return Fp6{
		v0.Add(t12.Mul(Xi)),
		t01.Add(v2.Mul(Xi)),
		t02.Add(v1),
	}
}

// mulSchoolbook is the 9-multiplication reference implementation, kept as
// the correctness oracle for Mul.
func (a Fp6) mulSchoolbook(b Fp6) Fp6 {
	t00 := a.B0.Mul(b.B0)
	t11 := a.B1.Mul(b.B1)
	t22 := a.B2.Mul(b.B2)
	c0 := a.B1.Mul(b.B2).Add(a.B2.Mul(b.B1)).Mul(Xi).Add(t00)
	c1 := a.B0.Mul(b.B1).Add(a.B1.Mul(b.B0)).Add(t22.Mul(Xi))
	c2 := a.B0.Mul(b.B2).Add(a.B2.Mul(b.B0)).Add(t11)
	return Fp6{c0, c1, c2}
}

func (a Fp6) Square() Fp6 { return a.Mul(a) }

// MulByV multiplies by v: (b0 + b1v + b2v²)·v = ξb2 + b0v + b1v².
func (a Fp6) MulByV() Fp6 { return Fp6{a.B2.Mul(Xi), a.B0, a.B1} }

// MulFp2 scales by an Fp2 element.
func (a Fp6) MulFp2(s Fp2) Fp6 { return Fp6{a.B0.Mul(s), a.B1.Mul(s), a.B2.Mul(s)} }

// Inv inverts using the standard norm-like construction.
func (a Fp6) Inv() Fp6 {
	t0 := a.B0.Square()
	t1 := a.B1.Square()
	t2 := a.B2.Square()
	t3 := a.B0.Mul(a.B1)
	t4 := a.B0.Mul(a.B2)
	t5 := a.B1.Mul(a.B2)
	c0 := t0.Sub(t5.Mul(Xi))
	c1 := t2.Mul(Xi).Sub(t3)
	c2 := t1.Sub(t4)
	den := a.B0.Mul(c0).Add(a.B2.Mul(c1).Mul(Xi)).Add(a.B1.Mul(c2).Mul(Xi))
	dinv := den.Inv()
	return Fp6{c0.Mul(dinv), c1.Mul(dinv), c2.Mul(dinv)}
}

// Fp12 is a0 + a1·w over Fp6 with w² = v.
type Fp12 struct {
	A0, A1 Fp6
}

// Fp12Zero returns the additive identity of Fp12.
func Fp12Zero() Fp12 { return Fp12{Fp6Zero(), Fp6Zero()} }

// Fp12One returns the multiplicative identity of Fp12.
func Fp12One() Fp12 { return Fp12{Fp6One(), Fp6Zero()} }

func (a Fp12) IsZero() bool      { return a.A0.IsZero() && a.A1.IsZero() }
func (a Fp12) IsOne() bool       { return a.Equal(Fp12One()) }
func (a Fp12) Equal(b Fp12) bool { return a.A0.Equal(b.A0) && a.A1.Equal(b.A1) }

func (a Fp12) Add(b Fp12) Fp12 { return Fp12{a.A0.Add(b.A0), a.A1.Add(b.A1)} }
func (a Fp12) Sub(b Fp12) Fp12 { return Fp12{a.A0.Sub(b.A0), a.A1.Sub(b.A1)} }
func (a Fp12) Neg() Fp12       { return Fp12{a.A0.Neg(), a.A1.Neg()} }

// Mul multiplies with the w² = v reduction (Karatsuba: 3 Fp6 products).
func (a Fp12) Mul(b Fp12) Fp12 {
	t0 := a.A0.Mul(b.A0)
	t1 := a.A1.Mul(b.A1)
	// (a0+a1)(b0+b1) − t0 − t1 = a0b1 + a1b0
	c1 := a.A0.Add(a.A1).Mul(b.A0.Add(b.A1)).Sub(t0).Sub(t1)
	c0 := t0.Add(t1.MulByV())
	return Fp12{c0, c1}
}

func (a Fp12) Square() Fp12 { return a.Mul(a) }

// Inv inverts: (a0 + a1w)⁻¹ = (a0 − a1w)/(a0² − v·a1²).
func (a Fp12) Inv() Fp12 {
	den := a.A0.Square().Sub(a.A1.Square().MulByV())
	dinv := den.Inv()
	return Fp12{a.A0.Mul(dinv), a.A1.Neg().Mul(dinv)}
}

// Exp raises a to a non-negative big integer power by square-and-multiply.
func (a Fp12) Exp(e *big.Int) Fp12 {
	if e.Sign() < 0 {
		return a.Inv().Exp(new(big.Int).Neg(e))
	}
	out := Fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = out.Square()
		if e.Bit(i) == 1 {
			out = out.Mul(a)
		}
	}
	return out
}

// Bytes returns the canonical fixed-width encoding (12 coordinates, 32 bytes
// each, tower order), used to derive symmetric keys from GT elements.
func (a Fp12) Bytes() []byte {
	out := make([]byte, 0, 12*32)
	coords := []*big.Int{
		a.A0.B0.C0, a.A0.B0.C1, a.A0.B1.C0, a.A0.B1.C1, a.A0.B2.C0, a.A0.B2.C1,
		a.A1.B0.C0, a.A1.B0.C1, a.A1.B1.C0, a.A1.B1.C1, a.A1.B2.C0, a.A1.B2.C1,
	}
	var buf [32]byte
	for _, c := range coords {
		c.FillBytes(buf[:])
		out = append(out, buf[:]...)
	}
	return out
}
