package pairing

import "math/big"

// Frobenius endomorphism and the optimized final exponentiation.
//
// The naive final exponentiation raises to (p¹²−1)/r with a ~3000-bit
// square-and-multiply — correct but ~6x more Fp12 work than necessary. The
// standard optimization splits the exponent:
//
//	(p¹²−1)/r = (p⁶−1) · (p²+1) · (p⁴−p²+1)/r
//
// The first two factors (the "easy part") cost one conjugation, one inversion
// and two Frobenius applications. The "hard part" uses the base-p
// decomposition of Devegili–Scott–Dahab for BN curves:
//
//	(p⁴−p²+1)/r = p³ + (6u²+1)·p² + (−36u³−18u²−12u+1)·p + (−36u³−30u²−18u−2)
//
// where u is the BN parameter. The identity is *verified numerically at
// init* (see hardPartCoeffs), so a transcription error cannot silently
// corrupt pairings; tests additionally compare the optimized path against
// the naive exponentiation on random inputs.
//
// After the easy part the element lies in the cyclotomic subgroup, where
// inversion is conjugation (f^(p⁶) = f̄ = f⁻¹) — negative coefficients are
// free.

// bnU is the BN254 curve parameter u: p and r are the standard BN
// polynomials evaluated at u.
var bnU = bigFromDecimal("4965661367192848881")

// frobGamma1 is γ = ξ^((p−1)/6): the constant the Frobenius map scales
// tower coefficients by. Computed numerically at init — no transcribed
// constants.
var frobGamma1 = func() Fp2 {
	e := new(big.Int).Sub(P, big.NewInt(1))
	e.Div(e, big.NewInt(6))
	return fp2Exp(Xi, e)
}()

// frobGammas[i] = γ^i for i = 0..5.
var frobGammas = func() [6]Fp2 {
	var out [6]Fp2
	out[0] = Fp2One()
	for i := 1; i < 6; i++ {
		out[i] = out[i-1].Mul(frobGamma1)
	}
	return out
}()

// fp2Exp raises an Fp2 element to a non-negative big integer power.
func fp2Exp(a Fp2, e *big.Int) Fp2 {
	out := Fp2One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = out.Square()
		if e.Bit(i) == 1 {
			out = out.Mul(a)
		}
	}
	return out
}

// Conjugate maps g + h·w to g − h·w (= f^(p⁶); the inverse within the
// cyclotomic subgroup).
func (a Fp12) Conjugate() Fp12 { return Fp12{A0: a.A0, A1: a.A1.Neg()} }

// Frobenius computes a^p using the precomputed tower constants: each Fp2
// coefficient c of v^j·w^k maps to conj(c)·γ^(2j+k).
func (a Fp12) Frobenius() Fp12 {
	conj := func(c Fp2) Fp2 { return Fp2{new(big.Int).Set(c.C0), fpNeg(c.C1)} }
	return Fp12{
		A0: Fp6{
			conj(a.A0.B0),                    // v⁰w⁰: γ⁰
			conj(a.A0.B1).Mul(frobGammas[2]), // v¹w⁰: γ²
			conj(a.A0.B2).Mul(frobGammas[4]), // v²w⁰: γ⁴
		},
		A1: Fp6{
			conj(a.A1.B0).Mul(frobGammas[1]), // v⁰w¹: γ¹
			conj(a.A1.B1).Mul(frobGammas[3]), // v¹w¹: γ³
			conj(a.A1.B2).Mul(frobGammas[5]), // v²w¹: γ⁵
		},
	}
}

// FrobeniusN applies the Frobenius n times.
func (a Fp12) FrobeniusN(n int) Fp12 {
	out := a
	for i := 0; i < n; i++ {
		out = out.Frobenius()
	}
	return out
}

// hardPartCoeffs returns λ0..λ3 of the base-p decomposition, with signs, and
// panics (at init, caught by every test) if the decomposition does not equal
// (p⁴−p²+1)/r.
var hardLambdas = func() [4]*big.Int {
	u := bnU
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)

	l3 := big.NewInt(1)
	// λ2 = 6u² + 1
	l2 := new(big.Int).Mul(big.NewInt(6), u2)
	l2.Add(l2, big.NewInt(1))
	// λ1 = −36u³ − 18u² − 12u + 1
	l1 := new(big.Int).Mul(big.NewInt(-36), u3)
	l1.Sub(l1, new(big.Int).Mul(big.NewInt(18), u2))
	l1.Sub(l1, new(big.Int).Mul(big.NewInt(12), u))
	l1.Add(l1, big.NewInt(1))
	// λ0 = −36u³ − 30u² − 18u − 2
	l0 := new(big.Int).Mul(big.NewInt(-36), u3)
	l0.Sub(l0, new(big.Int).Mul(big.NewInt(30), u2))
	l0.Sub(l0, new(big.Int).Mul(big.NewInt(18), u))
	l0.Sub(l0, big.NewInt(2))

	// Verify λ3·p³ + λ2·p² + λ1·p + λ0 == (p⁴−p²+1)/r.
	check := new(big.Int).Mul(l3, new(big.Int).Exp(P, big.NewInt(3), nil))
	check.Add(check, new(big.Int).Mul(l2, new(big.Int).Exp(P, big.NewInt(2), nil)))
	check.Add(check, new(big.Int).Mul(l1, P))
	check.Add(check, l0)
	want := new(big.Int).Exp(P, big.NewInt(4), nil)
	want.Sub(want, new(big.Int).Exp(P, big.NewInt(2), nil))
	want.Add(want, big.NewInt(1))
	want.Div(want, R)
	if check.Cmp(want) != 0 {
		panic("pairing: BN hard-part decomposition does not verify")
	}
	return [4]*big.Int{l0, l1, l2, l3}
}()

// cycExp exponentiates within the cyclotomic subgroup, where negative
// exponents cost only a conjugation.
func cycExp(a Fp12, e *big.Int) Fp12 {
	if e.Sign() < 0 {
		return cycExp(a.Conjugate(), new(big.Int).Neg(e))
	}
	out := Fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = out.Square()
		if e.Bit(i) == 1 {
			out = out.Mul(a)
		}
	}
	return out
}

// finalExp computes f^((p¹²−1)/r) via the easy/hard split. It agrees with
// f.Exp(finalExpPower) on every input with f ≠ 0 (tested property).
func finalExp(f Fp12) Fp12 {
	// Easy part: f ← f^(p⁶−1) = conj(f)·f⁻¹, then f ← f^(p²+1).
	g := f.Conjugate().Mul(f.Inv())
	g = g.FrobeniusN(2).Mul(g)
	// Hard part: g^λ0 · π(g)^λ1 · π²(g)^λ2 · π³(g)^λ3 — all in the
	// cyclotomic subgroup now.
	out := cycExp(g, hardLambdas[0])
	out = out.Mul(cycExp(g.Frobenius(), hardLambdas[1]))
	out = out.Mul(cycExp(g.FrobeniusN(2), hardLambdas[2]))
	out = out.Mul(cycExp(g.FrobeniusN(3), hardLambdas[3]))
	return out
}
