package pairing

import "math/big"

// The reduced Tate pairing e(P, Q) = f_{r,P}(ψ(Q))^((p¹²−1)/r), where
// ψ: E'(Fp2) → E(Fp12) is the twist untwisting (x', y') ↦ (x'·w², y'·w³)
// (w⁶ = ξ makes this a curve isomorphism onto the right subgroup).
//
// Because P and all Miller-loop line coefficients live in Fp while ψ(Q)'s
// x-coordinate lands in the subfield Fp6·1 ⊕ 0·w (x'·w² = x'·v), the
// vertical-line denominators of Miller's algorithm take values in Fp6 and are
// annihilated by the final exponentiation (a^(p⁶−1) = 1 for a ∈ Fp6*), so
// they are omitted — standard denominator elimination.

// gtPoint is ψ(Q): a point of E(Fp12) with coordinates in the full tower.
type gtPoint struct {
	X, Y Fp12
}

// untwist applies ψ. x'·w² = x'·v (the w² = v reduction) keeps X in the
// A0-half; y'·w³ = (y'·v)·w puts Y in the A1-half.
func untwist(q G2) gtPoint {
	xv := Fp6{Fp2Zero(), q.X, Fp2Zero()} // x'·v ∈ Fp6
	yv := Fp6{Fp2Zero(), q.Y, Fp2Zero()} // y'·v ∈ Fp6
	return gtPoint{
		X: Fp12{A0: xv, A1: Fp6Zero()},
		Y: Fp12{A0: Fp6Zero(), A1: yv},
	}
}

// embedFp lifts an Fp scalar into Fp12.
func embedFp(a *big.Int) Fp12 {
	return Fp12{A0: Fp6{Fp2{new(big.Int).Set(a), new(big.Int)}, Fp2Zero(), Fp2Zero()}, A1: Fp6Zero()}
}

// lineEval evaluates the line through T with slope lambda (both over Fp) at
// the Fp12 point S: l(S) = (y_S − y_T) − λ·(x_S − x_T).
func lineEval(t G1, lambda *big.Int, s gtPoint) Fp12 {
	dy := s.Y.Sub(embedFp(t.Y))
	dx := s.X.Sub(embedFp(t.X))
	return dy.Sub(dx.mulFpScalar(lambda))
}

// mulFpScalar scales an Fp12 element by an Fp scalar.
func (a Fp12) mulFpScalar(s *big.Int) Fp12 {
	scale6 := func(x Fp6) Fp6 {
		return Fp6{x.B0.MulFp(s), x.B1.MulFp(s), x.B2.MulFp(s)}
	}
	return Fp12{A0: scale6(a.A0), A1: scale6(a.A1)}
}

// GT is an element of the order-r target group (the image of the pairing).
type GT struct {
	v Fp12
}

// GTOne is the identity of GT.
func GTOne() GT { return GT{v: Fp12One()} }

// Equal reports GT equality.
func (g GT) Equal(h GT) bool { return g.v.Equal(h.v) }

// IsOne reports whether g is the identity.
func (g GT) IsOne() bool { return g.v.IsOne() }

// Mul multiplies in GT.
func (g GT) Mul(h GT) GT { return GT{v: g.v.Mul(h.v)} }

// Inv inverts in GT.
func (g GT) Inv() GT { return GT{v: g.v.Inv()} }

// Exp raises to a scalar (taken mod r).
func (g GT) Exp(k *big.Int) GT {
	k = new(big.Int).Mod(k, R)
	return GT{v: g.v.Exp(k)}
}

// Bytes returns the canonical encoding (for KEM key derivation).
func (g GT) Bytes() []byte { return g.v.Bytes() }

// Pair computes the reduced Tate pairing e(P, Q). The pairing is bilinear,
// non-degenerate on G1 × G2, and e(P, Q) = 1 if either input is infinity.
func Pair(p G1, q G2) GT {
	if p.Inf || q.Inf {
		return GTOne()
	}
	s := untwist(q)
	f := Fp12One()
	t := p
	for i := R.BitLen() - 2; i >= 0; i-- {
		// Doubling step: f ← f²·l_{T,T}(S); T ← 2T.
		f = f.Square()
		if !t.Inf {
			if t.Y.Sign() == 0 {
				t = G1Infinity() // vertical tangent: contribution dies in final exp
			} else {
				lambda := fpMul(fpMul(big.NewInt(3), fpSqr(t.X)), fpInv(fpAdd(t.Y, t.Y)))
				f = f.Mul(lineEval(t, lambda, s))
				t = t.double()
			}
		}
		if R.Bit(i) == 1 && !t.Inf {
			// Addition step: f ← f·l_{T,P}(S); T ← T + P.
			if t.X.Cmp(p.X) == 0 {
				// T = ±P: the chord is vertical (Fp6-valued, dies in the
				// final exponentiation); only the point update matters.
				t = t.Add(p)
			} else {
				lambda := fpMul(fpSub(p.Y, t.Y), fpInv(fpSub(p.X, t.X)))
				f = f.Mul(lineEval(t, lambda, s))
				t = t.Add(p)
			}
		}
	}
	return GT{v: finalExp(f)}
}
