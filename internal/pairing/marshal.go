package pairing

import (
	"errors"
	"math/big"
)

// Wire encodings: fixed-width big-endian coordinates (32 B each).
// G1: X‖Y (64 B); G2: X.c0‖X.c1‖Y.c0‖Y.c1 (128 B); GT: 12 coordinates
// (384 B). The all-zero encoding is the point at infinity (0,0 is not on
// either curve, so the encoding is unambiguous).

const coordLen = 32

// G1MarshalLen is the byte length of a marshaled G1 point.
const G1MarshalLen = 2 * coordLen

// G2MarshalLen is the byte length of a marshaled G2 point.
const G2MarshalLen = 4 * coordLen

// GTMarshalLen is the byte length of a marshaled GT element.
const GTMarshalLen = 12 * coordLen

var errEncoding = errors.New("pairing: invalid point encoding")

func putCoord(dst []byte, v *big.Int) { v.FillBytes(dst[:coordLen]) }

func getCoord(src []byte) (*big.Int, error) {
	v := new(big.Int).SetBytes(src[:coordLen])
	if v.Cmp(P) >= 0 {
		return nil, errEncoding
	}
	return v, nil
}

// Marshal encodes the point (infinity → all zeros).
func (p G1) Marshal() []byte {
	out := make([]byte, G1MarshalLen)
	if p.Inf {
		return out
	}
	putCoord(out, p.X)
	putCoord(out[coordLen:], p.Y)
	return out
}

// UnmarshalG1 decodes and validates a G1 point (on-curve; G1 has cofactor 1,
// so on-curve implies correct order).
func UnmarshalG1(b []byte) (G1, error) {
	if len(b) != G1MarshalLen {
		return G1{}, errEncoding
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G1Infinity(), nil
	}
	x, err := getCoord(b)
	if err != nil {
		return G1{}, err
	}
	y, err := getCoord(b[coordLen:])
	if err != nil {
		return G1{}, err
	}
	p := G1{X: x, Y: y}
	if !p.IsOnCurve() {
		return G1{}, errEncoding
	}
	return p, nil
}

// Marshal encodes the point (infinity → all zeros).
func (p G2) Marshal() []byte {
	out := make([]byte, G2MarshalLen)
	if p.Inf {
		return out
	}
	putCoord(out, p.X.C0)
	putCoord(out[coordLen:], p.X.C1)
	putCoord(out[2*coordLen:], p.Y.C0)
	putCoord(out[3*coordLen:], p.Y.C1)
	return out
}

// UnmarshalG2 decodes and validates a G2 point: on the twist curve AND in the
// order-r subgroup (the twist has a large cofactor, so the subgroup check is
// security-relevant — small-subgroup points would leak key bits).
func UnmarshalG2(b []byte) (G2, error) {
	if len(b) != G2MarshalLen {
		return G2{}, errEncoding
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G2Infinity(), nil
	}
	coords := make([]*big.Int, 4)
	for i := range coords {
		v, err := getCoord(b[i*coordLen:])
		if err != nil {
			return G2{}, err
		}
		coords[i] = v
	}
	p := G2{X: Fp2{coords[0], coords[1]}, Y: Fp2{coords[2], coords[3]}}
	if !p.IsOnCurve() {
		return G2{}, errEncoding
	}
	if !p.ScalarMul(R).Equal(G2Infinity()) {
		return G2{}, errors.New("pairing: G2 point not in the order-r subgroup")
	}
	return p, nil
}

// Marshal encodes the GT element (see Fp12.Bytes).
func (g GT) Marshal() []byte { return g.v.Bytes() }

// UnmarshalGT decodes a GT element. Coordinates are range-checked; full
// subgroup membership (g^r = 1) is not verified here — call CheckOrder when
// accepting GT elements from untrusted parties.
func UnmarshalGT(b []byte) (GT, error) {
	if len(b) != GTMarshalLen {
		return GT{}, errEncoding
	}
	coords := make([]*big.Int, 12)
	for i := range coords {
		v, err := getCoord(b[i*coordLen:])
		if err != nil {
			return GT{}, err
		}
		coords[i] = v
	}
	v := Fp12{
		A0: Fp6{Fp2{coords[0], coords[1]}, Fp2{coords[2], coords[3]}, Fp2{coords[4], coords[5]}},
		A1: Fp6{Fp2{coords[6], coords[7]}, Fp2{coords[8], coords[9]}, Fp2{coords[10], coords[11]}},
	}
	if v.IsZero() {
		return GT{}, errEncoding
	}
	return GT{v: v}, nil
}

// CheckOrder reports whether g lies in the order-r subgroup (g^r = 1). It
// costs one Fp12 exponentiation; use it when deserializing GT elements from
// untrusted sources.
func (g GT) CheckOrder() bool { return g.v.Exp(R).IsOne() }
