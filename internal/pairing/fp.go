// Package pairing implements the BN254 pairing-friendly curve from scratch
// on math/big: the tower Fp → Fp2 → Fp6 → Fp12, the curve E(Fp): y² = x³ + 3
// (G1), its sextic twist E'(Fp2): y² = x³ + 3/ξ (G2), and the reduced Tate
// pairing e: G1 × G2 → GT ⊂ Fp12*.
//
// This substrate exists to implement the paper's two baselines for real —
// ciphertext-policy ABE (internal/abe, compared against Argus Level 2 in
// Fig 6c) and pairing-based secret handshakes (internal/pbc, compared against
// Argus Level 3 in Fig 6d). The paper used the jPBC Java library; building
// the pairing itself keeps the repository self-contained and makes the
// baselines' cost structurally honest: pairing operations really are orders
// of magnitude more expensive than the ECDSA/ECDH operations Argus uses.
//
// Implementation choices favor auditability over speed: affine coordinates,
// schoolbook tower arithmetic, Miller loop over the group order with
// denominator elimination (vertical lines land in Fp6 and die in the final
// exponentiation), and a final exponentiation done directly with the big
// integer (p¹²−1)/r. Every algebraic layer is covered by property tests.
package pairing

import "math/big"

// bigFromDecimal parses a base-10 constant; panics on malformed literals
// (programmer error, caught by any test).
func bigFromDecimal(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("pairing: bad constant " + s)
	}
	return v
}

var (
	// P is the BN254 field modulus.
	P = bigFromDecimal("21888242871839275222246405745257275088696311157297823662689037894645226208583")
	// R is the group order (of G1, G2 and GT).
	R = bigFromDecimal("21888242871839275222246405745257275088548364400416034343698204186575808495617")

	// sqrtExp = (p+1)/4: square roots in Fp via a^sqrtExp (p ≡ 3 mod 4).
	sqrtExp = new(big.Int).Div(new(big.Int).Add(P, big.NewInt(1)), big.NewInt(4))
	// inv2 = 2⁻¹ mod p.
	inv2 = new(big.Int).ModInverse(big.NewInt(2), P)
	// g2Cofactor = 2p − r: clearing it maps any point of E'(Fp2) into the
	// order-r subgroup G2.
	g2Cofactor = new(big.Int).Sub(new(big.Int).Lsh(P, 1), R)
	// finalExpPower = (p¹² − 1)/r: the reduced Tate pairing's final
	// exponentiation.
	finalExpPower = func() *big.Int {
		p12 := new(big.Int).Exp(P, big.NewInt(12), nil)
		p12.Sub(p12, big.NewInt(1))
		return p12.Div(p12, R)
	}()
)

// Arithmetic helpers on Fp elements (big.Ints kept in [0, P)).

func fpAdd(a, b *big.Int) *big.Int { return new(big.Int).Mod(new(big.Int).Add(a, b), P) }
func fpSub(a, b *big.Int) *big.Int { return new(big.Int).Mod(new(big.Int).Sub(a, b), P) }
func fpMul(a, b *big.Int) *big.Int { return new(big.Int).Mod(new(big.Int).Mul(a, b), P) }
func fpSqr(a *big.Int) *big.Int    { return fpMul(a, a) }
func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(P, new(big.Int).Mod(a, P))
}

func fpInv(a *big.Int) *big.Int {
	inv := new(big.Int).ModInverse(a, P)
	if inv == nil {
		panic("pairing: inverse of zero")
	}
	return inv
}

// fpSqrt returns a square root of a, or nil if a is a non-residue.
func fpSqrt(a *big.Int) *big.Int {
	c := new(big.Int).Exp(a, sqrtExp, P)
	if fpSqr(c).Cmp(new(big.Int).Mod(a, P)) != 0 {
		return nil
	}
	return c
}
