package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

// randFp draws a pseudo-random field element (deterministic seed for tests).
func randFp(rng *rand.Rand) *big.Int {
	b := make([]byte, 40)
	rng.Read(b)
	return new(big.Int).Mod(new(big.Int).SetBytes(b), P)
}

func randFp2(rng *rand.Rand) Fp2   { return Fp2{randFp(rng), randFp(rng)} }
func randFp6(rng *rand.Rand) Fp6   { return Fp6{randFp2(rng), randFp2(rng), randFp2(rng)} }
func randFp12(rng *rand.Rand) Fp12 { return Fp12{randFp6(rng), randFp6(rng)} }

func TestFp2FieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a, b, c := randFp2(rng), randFp2(rng), randFp2(rng)
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatal("Fp2 multiplication not commutative")
		}
		if !a.Mul(b.Mul(c)).Equal(a.Mul(b).Mul(c)) {
			t.Fatal("Fp2 multiplication not associative")
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatal("Fp2 not distributive")
		}
		if !a.Mul(Fp2One()).Equal(a) {
			t.Fatal("Fp2 one is not identity")
		}
		if !a.IsZero() && !a.Mul(a.Inv()).Equal(Fp2One()) {
			t.Fatal("Fp2 inverse wrong")
		}
		if !a.Square().Equal(a.Mul(a)) {
			t.Fatal("Fp2 square disagrees with mul")
		}
	}
	// u² = −1.
	u := Fp2{new(big.Int), big.NewInt(1)}
	if !u.Square().Equal(Fp2One().Neg()) {
		t.Fatal("u² ≠ −1")
	}
}

func TestFp2Sqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	found := 0
	for i := 0; i < 60; i++ {
		a := randFp2(rng)
		sq := a.Square()
		root, ok := sq.Sqrt()
		if !ok {
			t.Fatal("square reported as non-residue")
		}
		if !root.Square().Equal(sq) {
			t.Fatal("sqrt(a²)² ≠ a²")
		}
		if _, ok := randFp2(rng).Sqrt(); ok {
			found++
		}
	}
	// About half of random elements are squares.
	if found == 0 || found == 60 {
		t.Fatalf("implausible residue rate: %d/60", found)
	}
}

func TestFp6FieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		a, b, c := randFp6(rng), randFp6(rng), randFp6(rng)
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatal("Fp6 multiplication not commutative")
		}
		if !a.Mul(b.Mul(c)).Equal(a.Mul(b).Mul(c)) {
			t.Fatal("Fp6 multiplication not associative")
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatal("Fp6 not distributive")
		}
		if !a.IsZero() && !a.Mul(a.Inv()).Equal(Fp6One()) {
			t.Fatal("Fp6 inverse wrong")
		}
	}
	// v³ = ξ.
	v := Fp6{Fp2Zero(), Fp2One(), Fp2Zero()}
	xi := Fp6{Xi, Fp2Zero(), Fp2Zero()}
	if !v.Mul(v).Mul(v).Equal(xi) {
		t.Fatal("v³ ≠ ξ")
	}
	// MulByV agrees with multiplication by v.
	a := randFp6(rand.New(rand.NewSource(4)))
	if !a.MulByV().Equal(a.Mul(v)) {
		t.Fatal("MulByV disagrees")
	}
}

func TestFp12FieldAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		a, b, c := randFp12(rng), randFp12(rng), randFp12(rng)
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatal("Fp12 multiplication not commutative")
		}
		if !a.Mul(b.Mul(c)).Equal(a.Mul(b).Mul(c)) {
			t.Fatal("Fp12 multiplication not associative")
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatal("Fp12 not distributive")
		}
		if !a.IsZero() && !a.Mul(a.Inv()).Equal(Fp12One()) {
			t.Fatal("Fp12 inverse wrong")
		}
	}
	// w² = v.
	w := Fp12{Fp6Zero(), Fp6One()}
	v := Fp12{Fp6{Fp2Zero(), Fp2One(), Fp2Zero()}, Fp6Zero()}
	if !w.Square().Equal(v) {
		t.Fatal("w² ≠ v")
	}
	// w⁶ = ξ — what untwisting relies on.
	xi := Fp12{Fp6{Xi, Fp2Zero(), Fp2Zero()}, Fp6Zero()}
	w6 := w.Square().Mul(w.Square()).Mul(w.Square())
	if !w6.Equal(xi) {
		t.Fatal("w⁶ ≠ ξ")
	}
}

func TestFp12Exp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randFp12(rng)
	if !a.Exp(big.NewInt(0)).IsOne() {
		t.Fatal("a⁰ ≠ 1")
	}
	if !a.Exp(big.NewInt(1)).Equal(a) {
		t.Fatal("a¹ ≠ a")
	}
	if !a.Exp(big.NewInt(5)).Equal(a.Mul(a).Mul(a).Mul(a).Mul(a)) {
		t.Fatal("a⁵ wrong")
	}
	// Exponent additivity.
	x, y := big.NewInt(1234567), big.NewInt(7654321)
	sum := new(big.Int).Add(x, y)
	if !a.Exp(x).Mul(a.Exp(y)).Equal(a.Exp(sum)) {
		t.Fatal("a^x·a^y ≠ a^(x+y)")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	if !g.IsOnCurve() {
		t.Fatal("generator off curve")
	}
	if !g.Add(G1Infinity()).Equal(g) {
		t.Fatal("g + O ≠ g")
	}
	if !g.Add(g.Neg()).Equal(G1Infinity()) {
		t.Fatal("g + (−g) ≠ O")
	}
	two := g.Add(g)
	three := two.Add(g)
	if !three.Equal(g.Add(two)) {
		t.Fatal("addition not commutative")
	}
	if !g.ScalarMul(big.NewInt(3)).Equal(three) {
		t.Fatal("3·g wrong")
	}
	// The group has order r.
	if !g.ScalarMul(R).Equal(G1Infinity()) {
		t.Fatal("r·g ≠ O")
	}
	// Scalar arithmetic.
	a, b := big.NewInt(123456789), big.NewInt(987654321)
	left := g.ScalarMul(a).Add(g.ScalarMul(b))
	right := g.ScalarMul(new(big.Int).Add(a, b))
	if !left.Equal(right) {
		t.Fatal("aG + bG ≠ (a+b)G")
	}
	if !g.ScalarMul(a).IsOnCurve() {
		t.Fatal("scalar multiple off curve")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	if !g.IsOnCurve() {
		t.Fatal("G2 generator off twist curve")
	}
	if !g.ScalarMul(R).Equal(G2Infinity()) {
		t.Fatal("r·g2 ≠ O — generator not in the order-r subgroup")
	}
	if !g.Add(g.Neg()).Equal(G2Infinity()) {
		t.Fatal("g2 + (−g2) ≠ O")
	}
	two := g.Add(g)
	if !two.IsOnCurve() {
		t.Fatal("2·g2 off curve")
	}
	if !g.ScalarMul(big.NewInt(2)).Equal(two) {
		t.Fatal("2·g2 wrong")
	}
	a, b := big.NewInt(31415926), big.NewInt(27182818)
	left := g.ScalarMul(a).Add(g.ScalarMul(b))
	right := g.ScalarMul(new(big.Int).Add(a, b))
	if !left.Equal(right) {
		t.Fatal("aG2 + bG2 ≠ (a+b)G2")
	}
}

func TestHashToG1(t *testing.T) {
	p1 := HashToG1([]byte("attribute: department:X"))
	p2 := HashToG1([]byte("attribute: department:X"))
	p3 := HashToG1([]byte("attribute: department:Y"))
	if !p1.Equal(p2) {
		t.Fatal("hash not deterministic")
	}
	if p1.Equal(p3) {
		t.Fatal("distinct inputs collide")
	}
	if !p1.IsOnCurve() || p1.Inf {
		t.Fatal("hash output invalid")
	}
	if !p1.ScalarMul(R).Equal(G1Infinity()) {
		t.Fatal("hash output not order r")
	}
}

func TestHashToG2(t *testing.T) {
	p1 := HashToG2([]byte("attr-a"))
	p2 := HashToG2([]byte("attr-a"))
	p3 := HashToG2([]byte("attr-b"))
	if !p1.Equal(p2) {
		t.Fatal("hash not deterministic")
	}
	if p1.Equal(p3) {
		t.Fatal("distinct inputs collide")
	}
	if !p1.IsOnCurve() || p1.Inf {
		t.Fatal("hash output invalid")
	}
	// Cofactor clearing must land in the order-r subgroup.
	if !p1.ScalarMul(R).Equal(G2Infinity()) {
		t.Fatal("hash output not order r")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	if e.IsOne() {
		t.Fatal("e(G1, G2) = 1 — degenerate pairing")
	}
	// GT has order r: e^r = 1.
	if !e.Exp(new(big.Int).Sub(R, big.NewInt(1))).Mul(e).IsOne() {
		t.Fatal("e^r ≠ 1")
	}
	if !Pair(G1Infinity(), G2Generator()).IsOne() {
		t.Fatal("e(O, Q) ≠ 1")
	}
	if !Pair(G1Generator(), G2Infinity()).IsOne() {
		t.Fatal("e(P, O) ≠ 1")
	}
}

func TestPairingBilinear(t *testing.T) {
	g1, g2 := G1Generator(), G2Generator()
	a := big.NewInt(6891011)
	b := big.NewInt(1213141516)

	base := Pair(g1, g2)
	// e(aP, Q) = e(P, Q)^a
	if !Pair(g1.ScalarMul(a), g2).Equal(base.Exp(a)) {
		t.Fatal("left linearity fails")
	}
	// e(P, bQ) = e(P, Q)^b
	if !Pair(g1, g2.ScalarMul(b)).Equal(base.Exp(b)) {
		t.Fatal("right linearity fails")
	}
	// e(aP, bQ) = e(P, Q)^{ab}
	ab := new(big.Int).Mul(a, b)
	if !Pair(g1.ScalarMul(a), g2.ScalarMul(b)).Equal(base.Exp(ab)) {
		t.Fatal("joint bilinearity fails")
	}
}

func TestPairingWithHashedPoints(t *testing.T) {
	// The SOK handshake shape: e(s·H1(A), H2(B)) = e(H1(A), s·H2(B)).
	s := big.NewInt(987654321987654321)
	h1 := HashToG1([]byte("identity-A"))
	h2 := HashToG2([]byte("identity-B"))
	left := Pair(h1.ScalarMul(s), h2)
	right := Pair(h1, h2.ScalarMul(s))
	if !left.Equal(right) {
		t.Fatal("SOK key agreement identity fails")
	}
	if left.IsOne() {
		t.Fatal("degenerate handshake key")
	}
}

func TestGTOps(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	if !e.Mul(e.Inv()).IsOne() {
		t.Fatal("GT inverse wrong")
	}
	if !GTOne().IsOne() {
		t.Fatal("GTOne not one")
	}
	b1 := e.Bytes()
	b2 := e.Bytes()
	if len(b1) != 12*32 {
		t.Fatalf("GT encoding length %d", len(b1))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("GT encoding not deterministic")
		}
	}
	if string(e.Exp(big.NewInt(2)).Bytes()) == string(b1) {
		t.Fatal("distinct GT elements encode identically")
	}
}

func TestRandomScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	read := func(b []byte) error { rng.Read(b); return nil }
	k1, err := RandomScalar(read)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := RandomScalar(read)
	if k1.Sign() == 0 || k1.Cmp(R) >= 0 {
		t.Fatal("scalar out of range")
	}
	if k1.Cmp(k2) == 0 {
		t.Fatal("scalars repeat")
	}
}

// TestKaratsubaAgreesWithSchoolbook pins the optimized Fp6 multiplication to
// the 9-multiplication reference on random inputs.
func TestKaratsubaAgreesWithSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		a, b := randFp6(rng), randFp6(rng)
		if !a.Mul(b).Equal(a.mulSchoolbook(b)) {
			t.Fatal("Karatsuba Fp6 multiplication diverges from schoolbook")
		}
	}
}
