package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

func BenchmarkFp12Mul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randFp12(rng), randFp12(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	g := G1Generator()
	k := bigFromDecimal("123456789012345678901234567890")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMul(k)
	}
}

func BenchmarkG2ScalarMul(b *testing.B) {
	g := G2Generator()
	k := bigFromDecimal("123456789012345678901234567890")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMul(k)
	}
}

func BenchmarkMillerPlusFinalExp(b *testing.B) {
	p, q := G1Generator(), G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashToG1([]byte{byte(i), byte(i >> 8)})
	}
}

func BenchmarkGTExp(b *testing.B) {
	e := Pair(G1Generator(), G2Generator())
	k := new(big.Int).Sub(R, big.NewInt(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Exp(k)
	}
}
