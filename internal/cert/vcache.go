package cert

import (
	"container/list"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/obs"
	"argus/internal/suite"
)

// VerifyCache memoizes admin-signed credential verifications — the CERT
// chain check of VerifyCertChain and the PROF signature check of
// Profile.VerifyAnchored. In the Level 2/3 handshake those four ECDSA
// verifications are repeated on every QUE2/RES1 exchange with the same peer,
// so at the paper's §VIII scales (up to 10³ subjects/objects per category)
// redundant signature verification dominates the handshake cost. Memoizing
// them turns the steady-state warm-peer handshake from 4 credential
// verifications to 0; only the per-session signatures over fresh nonces
// (SIG_O on RES1, SIG_S on QUE2) remain.
//
// Design:
//
//   - Keying. Entries are keyed by SHA-256 over (kind, trust anchor,
//     verifying key, credential bytes). A credential re-issued with any
//     change — rotated key, new serial, new attributes — has different bytes
//     and therefore can never be served a stale result; likewise a different
//     anchor (hierarchy reconfiguration) never aliases.
//   - Positive-only. Only successful verifications are cached. A failing
//     credential always takes the real verification path, so an attacker
//     cannot poison the cache and no failure mode needs invalidating.
//   - Validity windows. Each entry stores the joint validity window of
//     everything it verified (certificate chain NotBefore/NotAfter, profile
//     Issued/Expires). A hit outside the window is evicted and re-verified,
//     so caching never extends a credential's life.
//   - Bounded. At most capacity entries, evicted LRU, so a crowd of
//     ephemeral peers cannot exhaust device memory.
//   - Invalidation. InvalidateEntity drops every entry bound to one
//     registered identity (the hook Object.Revoke and engine Refresh use);
//     Flush drops everything (anchor rotation).
//
// All methods are safe for concurrent use, and safe on a nil *VerifyCache:
// a nil cache performs the real verification, so engine code calls through
// it unconditionally.
type VerifyCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *vcEntry
	byKey    map[[32]byte]*list.Element
	byEntity map[ID]map[[32]byte]struct{}

	hitsN, missesN atomic.Int64

	// sf coalesces concurrent miss-path verifications of the same key onto a
	// single leader (per-key singleflight). With batched delivery the mesh
	// hands a worker a burst of identical QUE2s from one peer; without
	// coalescing each one pays the full ECDSA chain verification before the
	// first finishes and populates the cache. Counters are untouched by the
	// flight machinery: every caller records its miss before joining, so
	// miss accounting stays exact under coalescing.
	sfMu sync.Mutex
	sf   map[[32]byte]*vcFlight

	// tel holds the exposition handles (nil until Instrument): a hit/miss
	// counter pair per credential kind. Swapped atomically so Instrument is
	// safe against in-flight lookups.
	tel atomic.Pointer[vcTelemetry]
}

// vcFlight is one in-flight miss verification. Waiters block on done; err is
// the leader's result, published before done closes.
type vcFlight struct {
	done chan struct{}
	err  error
}

// joinFlight registers the caller on key's flight, reporting whether it is
// the leader (true: caller must verify and call leaveFlight) or a waiter
// (false: caller blocks on the returned flight's done channel).
func (c *VerifyCache) joinFlight(key [32]byte) (*vcFlight, bool) {
	c.sfMu.Lock()
	defer c.sfMu.Unlock()
	if fl, ok := c.sf[key]; ok {
		return fl, false
	}
	if c.sf == nil {
		c.sf = make(map[[32]byte]*vcFlight)
	}
	fl := &vcFlight{done: make(chan struct{})}
	c.sf[key] = fl
	return fl, true
}

// leaveFlight publishes the leader's result and releases the waiters. Called
// after store, so a waiter's re-lookup observes the fresh entry.
func (c *VerifyCache) leaveFlight(key [32]byte, fl *vcFlight, err error) {
	fl.err = err
	c.sfMu.Lock()
	delete(c.sf, key)
	c.sfMu.Unlock()
	close(fl.done)
}

type vcTelemetry struct {
	certHits, certMisses, profHits, profMisses *obs.Counter
}

// DefaultVerifyCacheCapacity bounds a cache created with capacity <= 0:
// roomy enough for a full §VIII category (10³ peers, two credentials each)
// on the subject side while staying a few hundred KiB of index state.
const DefaultVerifyCacheCapacity = 2048

// Cache-key domain separators.
const (
	vcKindCert byte = 1
	vcKindProf byte = 2
)

type vcEntry struct {
	key    [32]byte
	kind   byte
	entity ID
	// info is the verified chain content (kind == vcKindCert only).
	info CertInfo
	// notBefore/notAfter bound the interval the memoized result is valid in.
	notBefore, notAfter time.Time
}

// NewVerifyCache creates a cache bounded to capacity entries
// (DefaultVerifyCacheCapacity if capacity <= 0).
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheCapacity
	}
	return &VerifyCache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[[32]byte]*list.Element),
		byEntity: make(map[ID]map[[32]byte]struct{}),
	}
}

// Instrument attaches hit/miss counters to the registry (nil detaches). Like
// all telemetry, counters never affect cache behavior.
func (c *VerifyCache) Instrument(reg *obs.Registry) {
	if c == nil {
		return
	}
	if reg == nil {
		c.tel.Store(nil)
		return
	}
	h := func(kind, result string) *obs.Counter {
		return reg.Counter(obs.MVerifyCacheEvents,
			"Credential verification cache lookups, by credential kind and result.",
			obs.L("kind", kind), obs.L("result", result))
	}
	c.tel.Store(&vcTelemetry{
		certHits: h("cert", "hit"), certMisses: h("cert", "miss"),
		profHits: h("prof", "hit"), profMisses: h("prof", "miss"),
	})
}

// Stats returns the lifetime hit/miss totals and the current entry count.
func (c *VerifyCache) Stats() (hits, misses int64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hitsN.Load(), c.missesN.Load(), c.lru.Len()
}

// Len returns the current number of entries.
func (c *VerifyCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Flush drops every entry (e.g. after a trust-anchor rotation).
func (c *VerifyCache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byKey = make(map[[32]byte]*list.Element)
	c.byEntity = make(map[ID]map[[32]byte]struct{})
}

// InvalidateEntity drops every cached verification bound to the given
// registered identity — certificates and profiles alike — and returns how
// many entries were removed. Called when an entity is revoked or its
// credentials are known to have rotated: the next handshake re-verifies from
// scratch.
func (c *VerifyCache) InvalidateEntity(id ID) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byEntity[id]
	n := len(keys)
	for k := range keys {
		if el, ok := c.byKey[k]; ok {
			c.lru.Remove(el)
			delete(c.byKey, k)
		}
	}
	delete(c.byEntity, id)
	return n
}

// VerifyCert is the memoizing equivalent of VerifyCertChain. On a nil cache
// it performs the real verification.
func (c *VerifyCache) VerifyCert(rootDER, certDER []byte, s suite.Strength) (*CertInfo, error) {
	if c == nil {
		return VerifyCertChain(rootDER, certDER, s)
	}
	var sb [2]byte
	sb[0], sb[1] = byte(int(s)>>8), byte(int(s))
	key := vcKey(vcKindCert, rootDER, sb[:], certDER)
	if e := c.lookup(key, time.Now()); e != nil {
		c.hit(vcKindCert)
		info := e.info
		return &info, nil
	}
	c.miss(vcKindCert)
	fl, leader := c.joinFlight(key)
	if !leader {
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		// The leader stored a fresh entry; serve it at this caller's own
		// verification time, exactly like a hit. If it is already gone
		// (evicted under pressure, or the window closed in between), fall
		// back to the real verification — rare, and never less strict.
		if e := c.lookup(key, time.Now()); e != nil {
			info := e.info
			return &info, nil
		}
		info, _, _, err := verifyCertChainWindow(rootDER, certDER, s)
		if err != nil {
			return nil, err
		}
		return info, nil
	}
	info, nb, na, err := verifyCertChainWindow(rootDER, certDER, s)
	if err == nil {
		c.store(&vcEntry{key: key, kind: vcKindCert, entity: info.ID, info: *info, notBefore: nb, notAfter: na})
	}
	c.leaveFlight(key, fl, err)
	if err != nil {
		return nil, err
	}
	return info, nil
}

// VerifyProfileAnchored is the memoizing equivalent of
// Profile.VerifyAnchored. p must be the profile decoded from raw (the wire
// bytes, which key the cache); now is the verification time, checked against
// the cached validity window on every hit exactly as the real path checks
// it. On a nil cache it performs the real verification.
func (c *VerifyCache) VerifyProfileAnchored(p *Profile, raw, anchorDER []byte, rootPub suite.PublicKey, now time.Time) error {
	if c == nil {
		return p.VerifyAnchored(anchorDER, rootPub, now)
	}
	key := vcKey(vcKindProf, anchorDER, rootPub.Bytes(), raw)
	if e := c.lookup(key, now); e != nil {
		c.hit(vcKindProf)
		return nil
	}
	c.miss(vcKindProf)
	fl, leader := c.joinFlight(key)
	if !leader {
		<-fl.done
		if fl.err != nil {
			return fl.err
		}
		if e := c.lookup(key, now); e != nil {
			return nil
		}
		return p.VerifyAnchored(anchorDER, rootPub, now)
	}
	if err := p.VerifyAnchored(anchorDER, rootPub, now); err != nil {
		c.leaveFlight(key, fl, err)
		return err
	}
	// The memoized result holds while the profile window AND the signer
	// chain (if any) remain valid. Verify's lower bound is Issued−1h.
	nb, na := p.Issued.Add(-time.Hour), p.Expires
	if len(p.SignerChain) > 0 {
		var chainDER []byte
		for _, cd := range p.SignerChain {
			chainDER = append(chainDER, cd...)
		}
		if certs, err := x509.ParseCertificates(chainDER); err == nil {
			for _, cc := range certs {
				if cc.NotBefore.After(nb) {
					nb = cc.NotBefore
				}
				if cc.NotAfter.Before(na) {
					na = cc.NotAfter
				}
			}
		}
	}
	c.store(&vcEntry{key: key, kind: vcKindProf, entity: p.Entity, notBefore: nb, notAfter: na})
	c.leaveFlight(key, fl, nil)
	return nil
}

// lookup returns the live entry for key, promoting it to most-recent; an
// entry whose validity window excludes now is evicted and nil is returned.
func (c *VerifyCache) lookup(key [32]byte, now time.Time) *vcEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	e := el.Value.(*vcEntry)
	if now.Before(e.notBefore) || now.After(e.notAfter) {
		c.removeLocked(el, e)
		return nil
	}
	c.lru.MoveToFront(el)
	return e
}

// store inserts an entry, evicting the least-recently-used one at capacity.
// A concurrent verification of the same credential may have stored the key
// already; the existing entry wins (results are identical by construction).
func (c *VerifyCache) store(e *vcEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byKey[e.key]; dup {
		return
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		c.removeLocked(back, back.Value.(*vcEntry))
	}
	el := c.lru.PushFront(e)
	c.byKey[e.key] = el
	keys := c.byEntity[e.entity]
	if keys == nil {
		keys = make(map[[32]byte]struct{})
		c.byEntity[e.entity] = keys
	}
	keys[e.key] = struct{}{}
}

func (c *VerifyCache) removeLocked(el *list.Element, e *vcEntry) {
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	if keys := c.byEntity[e.entity]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byEntity, e.entity)
		}
	}
}

func (c *VerifyCache) hit(kind byte) {
	c.hitsN.Add(1)
	if t := c.tel.Load(); t != nil {
		if kind == vcKindCert {
			t.certHits.Inc()
		} else {
			t.profHits.Inc()
		}
	}
}

func (c *VerifyCache) miss(kind byte) {
	c.missesN.Add(1)
	if t := c.tel.Load(); t != nil {
		if kind == vcKindCert {
			t.certMisses.Inc()
		} else {
			t.profMisses.Inc()
		}
	}
}

// vcKey hashes length-prefixed parts under a kind domain separator, so no
// two distinct (anchor, key, credential) triples can collide by
// concatenation ambiguity.
func vcKey(kind byte, parts ...[]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{'v', 'c', kind})
	var lb [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lb[:], uint64(len(p)))
		h.Write(lb[:])
		h.Write(p)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}
