package cert

import (
	"crypto/ecdsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"time"

	"argus/internal/suite"
)

// The paper's backend is "not a single server, but a hierarchy of servers
// run by the admin ... it realizes a chain of trust, and resists collapse
// under the load and a single point of failure" (§II-A). This file provides
// the chain-of-trust half: subordinate admins (per building/department)
// whose issued CERTs and PROFs verify against the single root anchor every
// device holds, so entities provisioned by different sub-backends can still
// authenticate each other.

// chain is the admin's certificate chain up to (excluding) the root: empty
// for the root admin itself.
func (a *Admin) Chain() [][]byte {
	out := make([][]byte, len(a.chain))
	for i, c := range a.chain {
		out[i] = append([]byte(nil), c...)
	}
	return out
}

// NewSubordinate creates a child admin (a sub-backend's signing identity)
// whose CA certificate is signed by this admin. Credentials the child issues
// carry the chain and verify against the root anchor.
func (a *Admin) NewSubordinate(name string) (*Admin, error) {
	key, err := suite.GenerateSigningKey(a.strength, nil)
	if err != nil {
		return nil, err
	}
	a.serial++
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(a.serial),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"Argus Enterprise Backend"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(5 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLenZero:        false,
	}
	der, err := createSizedCert(tmpl, a.caCert, &key.StdPrivate().PublicKey, a.key.StdPrivate(), a.strength)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	childChain := append([][]byte{der}, a.chain...)
	return &Admin{
		strength: a.strength,
		key:      key,
		caCert:   caCert,
		caDER:    der,
		serial:   1,
		chain:    childChain,
	}, nil
}

// IssueCertChain issues an entity certificate like IssueCert but returns the
// full chain encoding: entity DER followed by the admin's intermediate DERs,
// concatenated (x509.ParseCertificates consumes this form). Single-level
// admins return exactly IssueCert's output.
func (a *Admin) IssueCertChain(id ID, name string, role Role, pub suite.PublicKey) ([]byte, error) {
	leaf, err := a.IssueCert(id, name, role, pub)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), leaf...)
	for _, inter := range a.chain {
		out = append(out, inter...)
	}
	return out, nil
}

// VerifyCertChain parses certDER (an entity certificate optionally followed
// by intermediate CA certificates) and verifies the chain up to the root
// anchor rootDER. It returns the bound identity like VerifyCert.
func VerifyCertChain(rootDER, certDER []byte, s suite.Strength) (*CertInfo, error) {
	info, _, _, err := verifyCertChainWindow(rootDER, certDER, s)
	return info, err
}

// verifyCertChainWindow is VerifyCertChain plus the chain's joint validity
// window (max NotBefore, min NotAfter over every certificate involved) — the
// interval during which a memoized verification result stays trustworthy
// (see VerifyCache).
func verifyCertChainWindow(rootDER, certDER []byte, s suite.Strength) (*CertInfo, time.Time, time.Time, error) {
	var zero time.Time
	root, err := x509.ParseCertificate(rootDER)
	if err != nil {
		return nil, zero, zero, fmt.Errorf("cert: bad trust anchor: %w", err)
	}
	certs, err := x509.ParseCertificates(certDER)
	if err != nil || len(certs) == 0 {
		return nil, zero, zero, errors.New("cert: bad certificate chain")
	}
	leaf := certs[0]
	roots := x509.NewCertPool()
	roots.AddCert(root)
	inters := x509.NewCertPool()
	for _, c := range certs[1:] {
		inters.AddCert(c)
	}
	if _, err := leaf.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inters,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, zero, zero, fmt.Errorf("cert: chain does not verify: %w", err)
	}
	notBefore, notAfter := root.NotBefore, root.NotAfter
	for _, c := range certs {
		if c.NotBefore.After(notBefore) {
			notBefore = c.NotBefore
		}
		if c.NotAfter.Before(notAfter) {
			notAfter = c.NotAfter
		}
	}
	info, err := infoFromLeaf(leaf, s)
	if err != nil {
		return nil, zero, zero, err
	}
	return info, notBefore, notAfter, nil
}

// verifyCAChain verifies a chain of CA certificates (leaf first, concatenated
// DER) against the root anchor and returns the leaf CA's public key — the key
// that signed a sub-backend's profiles.
func verifyCAChain(rootDER, chainDER []byte) (suite.PublicKey, error) {
	root, err := x509.ParseCertificate(rootDER)
	if err != nil {
		return suite.PublicKey{}, fmt.Errorf("cert: bad trust anchor: %w", err)
	}
	certs, err := x509.ParseCertificates(chainDER)
	if err != nil || len(certs) == 0 {
		return suite.PublicKey{}, errors.New("cert: bad signer chain")
	}
	leaf := certs[0]
	roots := x509.NewCertPool()
	roots.AddCert(root)
	inters := x509.NewCertPool()
	for _, c := range certs[1:] {
		inters.AddCert(c)
	}
	if _, err := leaf.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inters,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return suite.PublicKey{}, fmt.Errorf("cert: signer chain does not verify: %w", err)
	}
	if !leaf.IsCA {
		return suite.PublicKey{}, errors.New("cert: profile signer is not a CA")
	}
	pub, ok := leaf.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return suite.PublicKey{}, errors.New("cert: signer is not ECDSA")
	}
	bits := pub.Curve.Params().BitSize
	var s suite.Strength
	switch bits {
	case 224:
		s = suite.S112
	case 256:
		s = suite.S128
	case 384:
		s = suite.S192
	case 521:
		s = suite.S256
	default:
		return suite.PublicKey{}, errors.New("cert: signer on unsupported curve")
	}
	raw := make([]byte, s.PointSize())
	cs := s.CoordinateSize()
	pub.X.FillBytes(raw[:cs])
	pub.Y.FillBytes(raw[cs:])
	return suite.PublicKeyFromBytes(s, raw)
}

// infoFromLeaf extracts the CertInfo fields from a verified leaf.
func infoFromLeaf(c *x509.Certificate, s suite.Strength) (*CertInfo, error) {
	pub, ok := c.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("cert: not an ECDSA certificate")
	}
	if pub.Curve != s.Curve() {
		return nil, errors.New("cert: wrong curve for strength")
	}
	raw := make([]byte, s.PointSize())
	cs := s.CoordinateSize()
	pub.X.FillBytes(raw[:cs])
	pub.Y.FillBytes(raw[cs:])
	spub, err := suite.PublicKeyFromBytes(s, raw)
	if err != nil {
		return nil, err
	}
	var role Role
	if len(c.Subject.OrganizationalUnit) == 1 {
		switch c.Subject.OrganizationalUnit[0] {
		case "subject":
			role = RoleSubject
		case "object":
			role = RoleObject
		}
	}
	if role == 0 {
		return nil, errors.New("cert: missing role")
	}
	idBytes, err := hex.DecodeString(c.Subject.SerialNumber)
	if err != nil || len(idBytes) != len(ID{}) {
		return nil, errors.New("cert: malformed entity ID")
	}
	var id ID
	copy(id[:], idBytes)
	return &CertInfo{ID: id, Name: c.Subject.CommonName, Role: role, Public: spub}, nil
}
