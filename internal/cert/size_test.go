package cert

import (
	"testing"

	"argus/internal/suite"
)

// TestIssuedCertSizesFixed checks the signature-length pinning: every
// certificate an admin issues has exactly the same DER size, so wire
// messages carrying CERTs are size-deterministic and fixed-seed simulation
// runs reproduce byte for byte.
func TestIssuedCertSizesFixed(t *testing.T) {
	admin, err := NewAdmin(suite.S128, "root")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 8; i++ {
		key, err := suite.GenerateSigningKey(suite.S128, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := IDFromName("entity")
		der, err := admin.IssueCert(id, "entity", RoleObject, key.Public())
		if err != nil {
			t.Fatal(err)
		}
		if want == 0 {
			want = len(der)
		}
		if len(der) != want {
			t.Fatalf("cert %d is %d B, want %d B — signature length not pinned", i, len(der), want)
		}
		if _, err := VerifyCert(admin.CACert(), der, suite.S128); err != nil {
			t.Fatalf("pinned-size cert does not verify: %v", err)
		}
	}
}

// TestMaxSigLen pins the DER arithmetic for every supported strength,
// including P-521 whose 521-bit order never fills its 66-byte coordinate.
func TestMaxSigLen(t *testing.T) {
	want := map[suite.Strength]int{
		suite.S112: 2 + 2*(2+29), // P-224: 224-bit order, sign octet
		suite.S128: 2 + 2*(2+33), // P-256: 256-bit order, sign octet
		suite.S192: 2 + 2*(2+49), // P-384: 384-bit order, sign octet
		suite.S256: 3 + 2*(2+66), // P-521: 521-bit order, no sign octet, long-form SEQ
	}
	for s, w := range want {
		if got := maxSigLen(s); got != w {
			t.Errorf("maxSigLen(%v) = %d, want %d", s, got, w)
		}
	}
}
