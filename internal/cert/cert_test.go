package cert

import (
	"bytes"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/suite"
)

func newTestAdmin(t *testing.T) *Admin {
	t.Helper()
	a, err := NewAdmin(suite.S128, "Argus Test Admin")
	if err != nil {
		t.Fatalf("NewAdmin: %v", err)
	}
	return a
}

func TestIssueAndVerifyCert(t *testing.T) {
	admin := newTestAdmin(t)
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	id := IDFromName("door-lock-conf-101")
	der, err := admin.IssueCert(id, "door-lock-conf-101", RoleObject, key.Public())
	if err != nil {
		t.Fatalf("IssueCert: %v", err)
	}
	info, err := VerifyCert(admin.CACert(), der, suite.S128)
	if err != nil {
		t.Fatalf("VerifyCert: %v", err)
	}
	if info.ID != id {
		t.Errorf("ID = %v, want %v", info.ID, id)
	}
	if info.Role != RoleObject {
		t.Errorf("Role = %v, want object", info.Role)
	}
	if info.Name != "door-lock-conf-101" {
		t.Errorf("Name = %q", info.Name)
	}
	if !info.Public.Equal(key.Public()) {
		t.Error("bound public key differs")
	}
}

func TestCertSizeMatchesPaper(t *testing.T) {
	// §IX-A: at 128-bit strength, CERT_X is an X.509 ECDSA certificate of
	// 552 B. Our certificates are real X.509 DER, so the size should land in
	// the same range (DER lengths vary slightly with integer encodings).
	admin := newTestAdmin(t)
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	der, err := admin.IssueCert(IDFromName("x"), "thermometer-07", RoleObject, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if len(der) < 450 || len(der) > 700 {
		t.Errorf("CERT size = %d B, want within [450,700] (paper: 552 B)", len(der))
	}
	t.Logf("CERT size = %d B (paper: 552 B)", len(der))
}

func TestVerifyCertRejectsForeignAdmin(t *testing.T) {
	adminA := newTestAdmin(t)
	adminB := newTestAdmin(t)
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	der, _ := adminA.IssueCert(IDFromName("e"), "e", RoleSubject, key.Public())
	if _, err := VerifyCert(adminB.CACert(), der, suite.S128); err == nil {
		t.Fatal("certificate from foreign admin accepted — external attackers have no backend-signed keys (§VII)")
	}
}

func TestVerifyCertRejectsTampering(t *testing.T) {
	admin := newTestAdmin(t)
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	der, _ := admin.IssueCert(IDFromName("e"), "entity", RoleSubject, key.Public())
	for _, i := range []int{len(der) / 2, len(der) - 1} {
		bad := append([]byte(nil), der...)
		bad[i] ^= 0x40
		if _, err := VerifyCert(admin.CACert(), bad, suite.S128); err == nil {
			t.Errorf("tampered certificate (byte %d) accepted", i)
		}
	}
	if _, err := VerifyCert(admin.CACert(), der[:len(der)/2], suite.S128); err == nil {
		t.Error("truncated certificate accepted")
	}
}

func TestVerifyCertWrongStrength(t *testing.T) {
	admin := newTestAdmin(t)
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	der, _ := admin.IssueCert(IDFromName("e"), "entity", RoleSubject, key.Public())
	if _, err := VerifyCert(admin.CACert(), der, suite.S192); err == nil {
		t.Fatal("P-256 certificate accepted at 192-bit strength")
	}
}

func testProfile() *Profile {
	return &Profile{
		Kind:      RoleObject,
		Entity:    IDFromName("multimedia-1"),
		Variant:   2,
		Serial:    7,
		Issued:    time.Now().Add(-time.Minute).Truncate(time.Second).UTC(),
		Expires:   time.Now().Add(24 * time.Hour).Truncate(time.Second).UTC(),
		Attrs:     attr.MustSet("room=101,type=multimedia"),
		Functions: []string{"play", "record", "cast"},
		Note:      "office multimedia station",
	}
}

func TestProfileEncodeDecodeRoundTrip(t *testing.T) {
	admin := newTestAdmin(t)
	p := testProfile()
	if err := admin.SignProfile(p); err != nil {
		t.Fatalf("SignProfile: %v", err)
	}
	b := p.Encode()
	got, err := DecodeProfile(b)
	if err != nil {
		t.Fatalf("DecodeProfile: %v", err)
	}
	if got.Kind != p.Kind || got.Entity != p.Entity || got.Variant != p.Variant || got.Serial != p.Serial {
		t.Error("header fields differ after round trip")
	}
	if !got.Issued.Equal(p.Issued) || !got.Expires.Equal(p.Expires) {
		t.Error("times differ after round trip")
	}
	if !got.Attrs.Equal(p.Attrs) {
		t.Errorf("attrs differ: %v vs %v", got.Attrs, p.Attrs)
	}
	if len(got.Functions) != len(p.Functions) {
		t.Fatalf("functions differ: %v", got.Functions)
	}
	for i := range got.Functions {
		if got.Functions[i] != p.Functions[i] {
			t.Errorf("function %d differs", i)
		}
	}
	if got.Note != p.Note {
		t.Error("note differs")
	}
	if !bytes.Equal(got.Sig, p.Sig) {
		t.Error("signature differs")
	}
}

func TestProfileVerify(t *testing.T) {
	admin := newTestAdmin(t)
	p := testProfile()
	if err := admin.SignProfile(p); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := p.Verify(admin.Public(), now); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	// Unsigned.
	q := testProfile()
	if err := q.Verify(admin.Public(), now); err == nil {
		t.Error("unsigned profile accepted")
	}
	// Altered attribute after signing — PROFs "cannot be forged/altered".
	p2 := testProfile()
	admin.SignProfile(p2)
	p2.Attrs["room"] = "999"
	if err := p2.Verify(admin.Public(), now); err == nil {
		t.Error("altered profile accepted")
	}
	// Expired.
	p3 := testProfile()
	p3.Expires = time.Now().Add(-time.Hour)
	admin.SignProfile(p3)
	if err := p3.Verify(admin.Public(), now); err == nil {
		t.Error("expired profile accepted")
	}
	// Wrong admin.
	other := newTestAdmin(t)
	if err := p.Verify(other.Public(), now); err == nil {
		t.Error("profile accepted under foreign admin key")
	}
}

func TestProfileDecodeErrors(t *testing.T) {
	admin := newTestAdmin(t)
	p := testProfile()
	admin.SignProfile(p)
	b := p.Encode()
	if _, err := DecodeProfile(b[:len(b)-3]); err == nil {
		t.Error("truncated profile decoded")
	}
	if _, err := DecodeProfile(append(b, 0)); err == nil {
		t.Error("profile with trailing bytes decoded")
	}
	bad := append([]byte(nil), b...)
	bad[0] = 99 // version
	if _, err := DecodeProfile(bad); err == nil {
		t.Error("unknown version decoded")
	}
	bad2 := append([]byte(nil), b...)
	bad2[1] = 77 // role
	if _, err := DecodeProfile(bad2); err == nil {
		t.Error("invalid role decoded")
	}
}

func TestProfilePadding(t *testing.T) {
	admin := newTestAdmin(t)
	p := testProfile()
	if err := p.PadNoteTo(200); err != nil {
		t.Fatalf("PadNoteTo: %v", err)
	}
	if got := p.EncodedLen(); got != 200 {
		t.Fatalf("padded length = %d, want 200", got)
	}
	if err := admin.SignProfile(p); err != nil {
		t.Fatal(err)
	}
	// Signing adds the signature on top of the 200-byte body region; the
	// signed profile still verifies and decodes.
	if err := p.Verify(admin.Public(), time.Now()); err != nil {
		t.Fatalf("padded profile rejected: %v", err)
	}
	if _, err := DecodeProfile(p.Encode()); err != nil {
		t.Fatalf("padded profile does not decode: %v", err)
	}
	// Padding below current size fails.
	if err := p.PadNoteTo(10); err == nil {
		t.Fatal("PadNoteTo(10) should fail")
	}
	// Idempotent at exact size.
	big := testProfile()
	big.PadNoteTo(300)
	if err := big.PadNoteTo(300); err != nil {
		t.Fatalf("PadNoteTo at exact size: %v", err)
	}
}

func TestIDHelpers(t *testing.T) {
	a := IDFromName("alpha")
	b := IDFromName("alpha")
	c := IDFromName("beta")
	if a != b {
		t.Error("IDFromName not deterministic")
	}
	if a == c {
		t.Error("distinct names collide")
	}
	r1, err := NewID(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewID(nil)
	if r1 == r2 {
		t.Error("random IDs collide")
	}
	if len(a.String()) != 32 {
		t.Errorf("ID hex length = %d", len(a.String()))
	}
}

func TestRoleString(t *testing.T) {
	if RoleSubject.String() != "subject" || RoleObject.String() != "object" {
		t.Error("role strings wrong")
	}
	if Role(9).String() != "role(9)" {
		t.Error("unknown role string wrong")
	}
}
