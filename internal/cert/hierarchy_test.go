package cert

import (
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/suite"
)

func TestSubordinateCertChainVerifies(t *testing.T) {
	root := newTestAdmin(t)
	building, err := root.NewSubordinate("Building-7 Backend")
	if err != nil {
		t.Fatal(err)
	}
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	id := IDFromName("lock-7-101")
	chainDER, err := building.IssueCertChain(id, "lock-7-101", RoleObject, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	// A device holding only the ROOT anchor verifies the chained cert.
	info, err := VerifyCert(root.CACert(), chainDER, suite.S128)
	if err != nil {
		t.Fatalf("chained cert rejected: %v", err)
	}
	if info.ID != id || info.Role != RoleObject {
		t.Fatal("wrong identity from chained cert")
	}
	// Without the intermediate, the leaf alone does not verify.
	leafOnly, err := building.IssueCert(id, "lock-7-101", RoleObject, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCert(root.CACert(), leafOnly, suite.S128); err == nil {
		t.Fatal("leaf without intermediate accepted")
	}
	// A foreign root rejects the whole chain.
	foreign := newTestAdmin(t)
	if _, err := VerifyCert(foreign.CACert(), chainDER, suite.S128); err == nil {
		t.Fatal("chain accepted under foreign root")
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	root := newTestAdmin(t)
	campus, err := root.NewSubordinate("Campus East")
	if err != nil {
		t.Fatal(err)
	}
	building, err := campus.NewSubordinate("Building 9")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(building.Chain()); got != 2 {
		t.Fatalf("chain depth = %d, want 2", got)
	}
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	chainDER, err := building.IssueCertChain(IDFromName("e"), "e", RoleSubject, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCert(root.CACert(), chainDER, suite.S128); err != nil {
		t.Fatalf("depth-2 chain rejected: %v", err)
	}
}

func TestSubordinateProfileVerifiesAgainstRootAnchor(t *testing.T) {
	root := newTestAdmin(t)
	sub, _ := root.NewSubordinate("Sub Backend")
	p := testProfile()
	if err := sub.SignProfile(p); err != nil {
		t.Fatal(err)
	}
	if len(p.SignerChain) != 1 {
		t.Fatalf("signer chain length = %d", len(p.SignerChain))
	}
	now := time.Now()
	// Devices hold the root anchor and the ROOT admin pub: direct pub check
	// fails (sub signed it), the chain path succeeds.
	if err := p.Verify(root.Public(), now); err == nil {
		t.Fatal("sub-signed profile verified under root pub directly")
	}
	if err := p.VerifyAnchored(root.CACert(), root.Public(), now); err != nil {
		t.Fatalf("anchored verification failed: %v", err)
	}
	// Foreign anchor rejects.
	foreign := newTestAdmin(t)
	if err := p.VerifyAnchored(foreign.CACert(), foreign.Public(), now); err == nil {
		t.Fatal("profile accepted under foreign anchor")
	}
	// The chain survives the wire.
	dec, err := DecodeProfile(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.VerifyAnchored(root.CACert(), root.Public(), now); err != nil {
		t.Fatalf("decoded profile fails anchored verification: %v", err)
	}
	// Chain tampering: swap in a foreign CA cert.
	dec.SignerChain[0] = foreign.CACert()
	if err := dec.VerifyAnchored(root.CACert(), root.Public(), now); err == nil {
		t.Fatal("tampered signer chain accepted")
	}
}

func TestRootProfilesUnchanged(t *testing.T) {
	// Root-signed profiles carry no chain and keep verifying directly.
	root := newTestAdmin(t)
	p := &Profile{
		Kind: RoleSubject, Entity: IDFromName("s"), Serial: 1,
		Issued: time.Now().UTC(), Expires: time.Now().Add(time.Hour).UTC(),
		Attrs: attr.MustSet("position=staff"),
	}
	if err := root.SignProfile(p); err != nil {
		t.Fatal(err)
	}
	if len(p.SignerChain) != 0 {
		t.Fatal("root-signed profile has a chain")
	}
	if err := p.VerifyAnchored(root.CACert(), root.Public(), time.Now()); err != nil {
		t.Fatal(err)
	}
}
