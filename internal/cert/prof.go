package cert

import (
	"errors"
	"fmt"
	"time"

	"argus/internal/attr"
	"argus/internal/enc"
	"argus/internal/suite"
)

// Profile is an attribute profile (PROF) signed by the admin (§IV-A).
//
// A subject PROF lists the subject's non-sensitive attributes and may be
// publicly disclosed (it is carried by QUE2). An object PROF additionally
// lists the provided functions — the service information — and a Level 2 or
// Level 3 object holds multiple PROF variants, one per subject category or
// secret group.
type Profile struct {
	Kind      Role
	Entity    ID
	Variant   uint32    // PROF variant index (0 for subjects)
	Serial    uint64    // issuance serial; bumped on re-issue, checked on revocation
	Issued    time.Time // second granularity on the wire
	Expires   time.Time
	Attrs     attr.Set // non-sensitive attributes
	Functions []string // object service functions; empty for subjects
	Note      string   // free-form service description; also used as size padding
	Sig       []byte   // admin ECDSA signature over the canonical body
	// SignerChain carries the issuing sub-admin's CA certificate chain (DER,
	// leaf first) when the profile was signed by a subordinate backend
	// (§II-A hierarchy); empty when the root admin signed. The chain is
	// self-authenticating, so it lives outside the signed body.
	SignerChain [][]byte
}

const profileVersion = 1

// body returns the canonical signed encoding (everything except Sig).
func (p *Profile) body() []byte {
	w := enc.NewWriter(256)
	w.U8(profileVersion)
	w.U8(byte(p.Kind))
	w.Raw(p.Entity[:])
	w.U32(p.Variant)
	w.U64(p.Serial)
	w.I64(p.Issued.Unix())
	w.I64(p.Expires.Unix())
	names := p.Attrs.Names()
	w.U16(uint16(len(names)))
	for _, n := range names {
		w.String16(n)
		w.String16(p.Attrs[n])
	}
	w.U16(uint16(len(p.Functions)))
	for _, f := range p.Functions {
		w.String16(f)
	}
	w.String16(p.Note)
	return w.Bytes()
}

// Encode returns the full wire encoding (body, signature, signer chain).
func (p *Profile) Encode() []byte {
	body := p.body()
	w := enc.NewWriter(len(body) + len(p.Sig) + 8)
	w.Raw(body)
	w.Bytes16(p.Sig)
	w.U8(byte(len(p.SignerChain)))
	for _, c := range p.SignerChain {
		w.Bytes16(c)
	}
	return w.Bytes()
}

// EncodedLen returns the wire length of the profile.
func (p *Profile) EncodedLen() int { return len(p.Encode()) }

// DecodeProfile parses a wire-encoded profile. The signature is not verified;
// call Verify.
func DecodeProfile(b []byte) (*Profile, error) {
	r := enc.NewReader(b)
	if v := r.U8(); v != profileVersion && r.Err() == nil {
		return nil, fmt.Errorf("cert: unsupported profile version %d", v)
	}
	p := &Profile{}
	p.Kind = Role(r.U8())
	copy(p.Entity[:], r.Raw(len(ID{})))
	p.Variant = r.U32()
	p.Serial = r.U64()
	p.Issued = time.Unix(r.I64(), 0).UTC()
	p.Expires = time.Unix(r.I64(), 0).UTC()
	nAttrs := int(r.U16())
	p.Attrs = make(attr.Set, nAttrs)
	for i := 0; i < nAttrs; i++ {
		name := r.String16()
		val := r.String16()
		if r.Err() == nil {
			p.Attrs[name] = val
		}
	}
	nFuncs := int(r.U16())
	for i := 0; i < nFuncs && r.Err() == nil; i++ {
		p.Functions = append(p.Functions, r.String16())
	}
	p.Note = r.String16()
	p.Sig = r.Bytes16()
	nChain := int(r.U8())
	for i := 0; i < nChain && r.Err() == nil; i++ {
		p.SignerChain = append(p.SignerChain, r.Bytes16())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if p.Kind != RoleSubject && p.Kind != RoleObject {
		return nil, errors.New("cert: profile has invalid role")
	}
	if len(p.Attrs) != nAttrs {
		return nil, errors.New("cert: profile has duplicate attributes")
	}
	return p, nil
}

// SignProfile signs the profile body with the admin key, setting p.Sig and,
// for subordinate admins, attaching the CA chain that lets devices verify
// against the root anchor.
func (a *Admin) SignProfile(p *Profile) error {
	sig, err := a.key.Sign(p.body())
	if err != nil {
		return err
	}
	p.Sig = sig
	p.SignerChain = a.Chain()
	return nil
}

// Verify checks the admin signature and validity period. now is the
// verification time (use the ground network's virtual clock in simulation).
func (p *Profile) Verify(adminPub suite.PublicKey, now time.Time) error {
	if len(p.Sig) == 0 {
		return errors.New("cert: profile is unsigned")
	}
	if !adminPub.Verify(p.body(), p.Sig) {
		return errors.New("cert: profile signature invalid")
	}
	if now.Before(p.Issued.Add(-time.Hour)) || now.After(p.Expires) {
		return errors.New("cert: profile outside validity period")
	}
	return nil
}

// VerifyAnchored verifies the profile in a possibly hierarchical deployment:
// profiles signed by the root admin verify against rootPub directly; profiles
// carrying a SignerChain verify the chain against the root anchor and then
// the signature against the chain's leaf key.
func (p *Profile) VerifyAnchored(anchorDER []byte, rootPub suite.PublicKey, now time.Time) error {
	if len(p.SignerChain) == 0 {
		return p.Verify(rootPub, now)
	}
	// Re-assemble the chain DERs and verify up to the anchor. The chain leaf
	// is the signing sub-admin's CA certificate.
	var chainDER []byte
	for _, c := range p.SignerChain {
		chainDER = append(chainDER, c...)
	}
	signerPub, err := verifyCAChain(anchorDER, chainDER)
	if err != nil {
		return err
	}
	return p.Verify(signerPub, now)
}

// PadNoteTo extends the Note field with spaces so the encoded profile is
// exactly target bytes. It returns an error if the profile is already larger.
// The paper assumes ~200 B profiles (§IX-A); padding also supports the
// constant-RES2-length requirement of indistinguishability (§VI-B): all PROF
// variants of one object are padded to the same length before encryption.
func (p *Profile) PadNoteTo(target int) error {
	cur := p.EncodedLen()
	if cur > target {
		return fmt.Errorf("cert: profile is %d bytes, larger than target %d", cur, target)
	}
	if cur == target {
		return nil
	}
	pad := target - cur
	b := make([]byte, pad)
	for i := range b {
		b[i] = ' '
	}
	p.Note += string(b)
	if got := p.EncodedLen(); got != target {
		return fmt.Errorf("cert: padding failed: %d != %d", got, target)
	}
	return nil
}
