// Package cert implements the admin-signed credentials issued by the Argus
// backend at bootstrapping (§IV-A):
//
//   - CERT — a public-key certificate binding an entity's identity to its
//     ECDSA public key. Real X.509 is used (via crypto/x509) so certificate
//     sizes match the paper's §IX-A accounting (552 B X.509 ECDSA
//     certificates at 128-bit strength).
//   - PROF — an attribute profile: for subjects, the signed list of
//     non-sensitive attributes; for objects, a service-information variant
//     (functions + attributes) selected per subject category or secret group.
//
// Both are signed by the admin's private key and "cannot be forged/altered";
// every verification chains to the admin public key loaded onto each device.
package cert

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"argus/internal/suite"
)

// maxSigLen returns the DER length of an ECDSA-Sig-Value (SEQUENCE of two
// INTEGERs) whose r and s both take their maximal encoding. r and s are
// uniform below the curve order n, so the longest minimal encoding has
// ceil(bitlen(n)/8) content octets, plus a 0x00 sign octet when bitlen(n) is
// a multiple of 8 (only then can the top bit be set) — reached with
// probability ~1/2 per integer either way.
func maxSigLen(s suite.Strength) int {
	bits := s.Curve().Params().N.BitLen()
	content := (bits + 7) / 8
	if bits%8 == 0 {
		content++ // leading 0x00 keeps the INTEGER positive
	}
	intLen := 2 + content // tag, length, content
	body := 2 * intLen
	header := 2
	if body >= 128 {
		header = 3 // long-form length (body fits one length octet for all curves)
	}
	return header + body
}

// createSizedCert wraps x509.CreateCertificate, re-signing until the DER
// ECDSA signature takes its maximal — and therefore fixed — length. DER
// encodes r and s as minimal-length INTEGERs, so a freshly signed
// certificate's size otherwise varies with the random nonce (±2 B), which
// would make fixed-seed simulation runs non-reproducible at the byte level:
// RES1 carries this DER verbatim, and message size drives virtual airtime.
// Both r and s are maximal with probability 1/4, so this takes 4 signatures
// on average, at issuance time only.
func createSizedCert(tmpl, parent *x509.Certificate, pub, priv any, s suite.Strength) ([]byte, error) {
	want := maxSigLen(s)
	for attempt := 0; attempt < 256; attempt++ {
		der, err := x509.CreateCertificate(rand.Reader, tmpl, parent, pub, priv)
		if err != nil {
			return nil, err
		}
		parsed, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, err
		}
		if len(parsed.Signature) == want {
			return der, nil
		}
	}
	return nil, errors.New("cert: could not produce a fixed-size signature")
}

// Role distinguishes the two registered entity kinds.
type Role byte

const (
	RoleSubject Role = 1 // users' devices (e.g. smartphones)
	RoleObject  Role = 2 // IoT devices offering services
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSubject:
		return "subject"
	case RoleObject:
		return "object"
	}
	return fmt.Sprintf("role(%d)", byte(r))
}

// ID is a 16-byte entity identifier assigned at registration.
type ID [16]byte

// NewID draws a random identifier from rng (crypto/rand.Reader if nil).
func NewID(rng io.Reader) (ID, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var id ID
	if _, err := io.ReadFull(rng, id[:]); err != nil {
		return ID{}, err
	}
	return id, nil
}

// IDFromName derives a deterministic ID from a human-readable name; used by
// examples and tests for stable identities.
func IDFromName(name string) ID {
	var id ID
	h := sha256.Sum256([]byte("argus-id:" + name))
	copy(id[:], h[:16])
	return id
}

// String renders the ID as hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Less orders IDs lexicographically by raw bytes — the identical order to
// comparing String() renderings (hex is monotone in the underlying bytes),
// without allocating two strings per comparison. Sorting notification lists
// by rendered hex was ~1/3 of all CPU during fleet-scale churn.
func (id ID) Less(other ID) bool { return bytes.Compare(id[:], other[:]) < 0 }

// Compare orders IDs bytewise (three-way), for slices.SortFunc and friends.
func (id ID) Compare(other ID) int { return bytes.Compare(id[:], other[:]) }

// Admin is the backend's certificate authority: it holds the admin private
// key whose public half (K_admin^pub) is loaded onto every subject device and
// object at bootstrapping.
type Admin struct {
	strength suite.Strength
	key      *suite.SigningKey
	caCert   *x509.Certificate
	caDER    []byte
	serial   int64
	// chain holds the intermediate CA certificates (DER) from this admin up
	// to, but excluding, the root — empty for the root admin. See
	// hierarchy.go (§II-A: the backend is a hierarchy of servers).
	chain [][]byte
}

// NewAdmin creates the admin identity with a self-signed CA certificate.
func NewAdmin(s suite.Strength, name string) (*Admin, error) {
	key, err := suite.GenerateSigningKey(s, nil)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"Argus Enterprise Backend"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := createSizedCert(tmpl, tmpl, &key.StdPrivate().PublicKey, key.StdPrivate(), s)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Admin{strength: s, key: key, caCert: caCert, caDER: der, serial: 1}, nil
}

// Strength returns the security strength the admin operates at.
func (a *Admin) Strength() suite.Strength { return a.strength }

// Public returns K_admin^pub, loaded onto every device at bootstrapping.
func (a *Admin) Public() suite.PublicKey { return a.key.Public() }

// CACert returns the admin's self-signed certificate (DER), the trust anchor
// for CERT verification.
func (a *Admin) CACert() []byte { return append([]byte(nil), a.caDER...) }

// Sign signs an arbitrary blob with the admin key (used for update
// notifications pushed to the ground network, §IV-A). Verify against
// Public().
func (a *Admin) Sign(msg []byte) ([]byte, error) { return a.key.Sign(msg) }

// Export returns the admin's persistent state: private key, CA certificate,
// issuance serial and intermediate chain. For the backend's store only.
func (a *Admin) Export() (keyBytes, caDER []byte, serial int64, chain [][]byte) {
	return a.key.Marshal(), a.CACert(), a.serial, a.Chain()
}

// RestoreSerial fast-forwards the certificate serial counter to at least n.
// WAL replay (internal/backendsvc) installs logged certificates without
// re-issuing them, so the counter must be advanced explicitly or a later
// live issuance would reuse a serial. Never moves the counter backwards.
func (a *Admin) RestoreSerial(n int64) {
	if n > a.serial {
		a.serial = n
	}
}

// ImportAdmin restores an admin exported by Export.
func ImportAdmin(keyBytes, caDER []byte, serial int64, chain [][]byte) (*Admin, error) {
	key, err := suite.UnmarshalSigningKey(keyBytes)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, err
	}
	if serial < 1 {
		return nil, errors.New("cert: invalid admin serial")
	}
	cp := make([][]byte, len(chain))
	for i, c := range chain {
		cp[i] = append([]byte(nil), c...)
	}
	return &Admin{
		strength: key.Strength(),
		key:      key,
		caCert:   caCert,
		caDER:    append([]byte(nil), caDER...),
		serial:   serial,
		chain:    cp,
	}, nil
}

// IssueCert creates an admin-signed X.509 certificate for an entity's public
// key. The returned DER bytes are the CERT_X wire field.
func (a *Admin) IssueCert(id ID, name string, role Role, pub suite.PublicKey) ([]byte, error) {
	a.serial++
	return a.issueCertWithSerial(a.serial, id, name, role, pub)
}

// issueCertWithSerial issues a certificate under an already-reserved serial
// number. It mutates no Admin state, so distinct serials may be issued
// concurrently (the batch issuance path below).
func (a *Admin) issueCertWithSerial(serial int64, id ID, name string, role Role, pub suite.PublicKey) ([]byte, error) {
	std, err := pub.Std()
	if err != nil {
		return nil, err
	}
	// Subject key identifier and OCSP endpoint are included as a real
	// enterprise deployment would; they also bring the DER size to the
	// paper's §IX-A ballpark (552 B at 128-bit strength).
	ski := sha256.Sum256(pub.Bytes())
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject: pkix.Name{
			CommonName:         name,
			Organization:       []string{"Argus Enterprise"},
			OrganizationalUnit: []string{role.String()},
			SerialNumber:       id.String(),
		},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(2 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		SubjectKeyId: ski[:20],
		OCSPServer:   []string{"https://backend.argus.example/ocsp"},
	}
	return createSizedCert(tmpl, a.caCert, std, a.key.StdPrivate(), a.strength)
}

// CertRequest describes one certificate in a batch issuance.
type CertRequest struct {
	ID   ID
	Name string
	Role Role
	Pub  suite.PublicKey
}

// IssueCertChainBatch issues one certificate chain per request on a worker
// pool of the given size (workers <= 1 issues sequentially). Serial numbers
// are reserved in request order before any signing starts and results merge
// by index, so the issued certificates are indistinguishable from sequential
// IssueCertChain calls — only the wall-clock time changes. Signing uses only
// immutable Admin state, making the fan-out safe.
func (a *Admin) IssueCertChainBatch(reqs []CertRequest, workers int) ([][]byte, error) {
	serials := make([]int64, len(reqs))
	for i := range reqs {
		a.serial++
		serials[i] = a.serial
	}
	out := make([][]byte, len(reqs))
	err := forEachIndex(len(reqs), workers, func(i int) error {
		leaf, err := a.issueCertWithSerial(serials[i], reqs[i].ID, reqs[i].Name, reqs[i].Role, reqs[i].Pub)
		if err != nil {
			return err
		}
		chain := append([]byte(nil), leaf...)
		for _, inter := range a.chain {
			chain = append(chain, inter...)
		}
		out[i] = chain
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachIndex runs fn(0..n-1) on up to `workers` goroutines (sequentially
// for workers <= 1) and returns the first error by index order. Workers
// write only to distinct indices, so results merge deterministically.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CertInfo is the verified content of a CERT.
type CertInfo struct {
	ID     ID
	Name   string
	Role   Role
	Public suite.PublicKey
}

// VerifyCert parses certDER — an entity certificate, optionally followed by
// intermediate CA certificates from a sub-backend (§II-A hierarchy) — and
// verifies the chain against the trust anchor caDER. It returns the bound
// identity and public key.
func VerifyCert(caDER, certDER []byte, s suite.Strength) (*CertInfo, error) {
	return VerifyCertChain(caDER, certDER, s)
}
