package cert

import (
	"errors"
	"sync"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/obs"
	"argus/internal/suite"

	"argus/internal/transport/transporttest"
)

// vcFixture builds an admin plus one issued entity credential pair.
type vcFixture struct {
	admin   *Admin
	id      ID
	pub     suite.PublicKey
	certDER []byte
	prof    *Profile
	profRaw []byte
}

func newVCFixture(t *testing.T, admin *Admin, name string) *vcFixture {
	t.Helper()
	key, err := suite.GenerateSigningKey(admin.Strength(), nil)
	if err != nil {
		t.Fatal(err)
	}
	id := IDFromName(name)
	certDER, err := admin.IssueCertChain(id, name, RoleObject, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	prof := &Profile{
		Kind:    RoleObject,
		Entity:  id,
		Serial:  1,
		Issued:  time.Now().Truncate(time.Second),
		Expires: time.Now().Add(24 * time.Hour).Truncate(time.Second),
		Attrs:   attr.Set{"room": "101"},
	}
	if err := admin.SignProfile(prof); err != nil {
		t.Fatal(err)
	}
	raw := prof.Encode()
	decoded, err := DecodeProfile(raw)
	if err != nil {
		t.Fatal(err)
	}
	return &vcFixture{admin: admin, id: id, pub: key.Public(), certDER: certDER, prof: decoded, profRaw: raw}
}

func newVCAdmin(t *testing.T) *Admin {
	t.Helper()
	admin, err := NewAdmin(suite.S128, "vcache-root")
	if err != nil {
		t.Fatal(err)
	}
	return admin
}

func TestVerifyCacheCertHitMiss(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "lamp")
	c := NewVerifyCache(8)

	info1, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength())
	if err != nil {
		t.Fatalf("first VerifyCert: %v", err)
	}
	if hits, misses, entries := statsOf(c); hits != 0 || misses != 1 || entries != 1 {
		t.Fatalf("after miss: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	info2, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength())
	if err != nil {
		t.Fatalf("second VerifyCert: %v", err)
	}
	if hits, misses, _ := statsOf(c); hits != 1 || misses != 1 {
		t.Fatalf("after hit: hits=%d misses=%d", hits, misses)
	}
	if info1.ID != fx.id || info2.ID != fx.id || info1.Name != "lamp" || info2.Name != "lamp" {
		t.Fatalf("cached info mismatch: %+v vs %+v", info1, info2)
	}
	// The hit must return a private copy, not aliased cache state.
	info2.Name = "mutated"
	info3, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength())
	if err != nil || info3.Name != "lamp" {
		t.Fatalf("cache entry was aliased by caller: %+v err=%v", info3, err)
	}
}

func TestVerifyCacheProfileHitMiss(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "plug")
	c := NewVerifyCache(8)
	now := time.Now()

	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
		t.Fatalf("first verify: %v", err)
	}
	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
		t.Fatalf("second verify: %v", err)
	}
	if hits, misses, entries := statsOf(c); hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("hits=%d misses=%d entries=%d", hits, misses, entries)
	}

	// A tampered profile must fail even though an entry exists for the
	// untampered bytes (different raw → different key → real verification).
	bad := *fx.prof
	bad.Note = "tampered"
	badRaw := bad.Encode()
	if err := c.VerifyProfileAnchored(&bad, badRaw, admin.CACert(), admin.Public(), now); err == nil {
		t.Fatal("tampered profile verified")
	}
	// Failures are never cached.
	if _, _, entries := statsOf(c); entries != 1 {
		t.Fatalf("failed verification was cached: entries=%d", entries)
	}
}

func TestVerifyCacheFailuresNotCached(t *testing.T) {
	admin := newVCAdmin(t)
	other := newVCAdmin(t)
	fx := newVCFixture(t, admin, "cam")
	c := NewVerifyCache(8)

	// Verifying against the wrong anchor fails and stores nothing.
	if _, err := c.VerifyCert(other.CACert(), fx.certDER, admin.Strength()); err == nil {
		t.Fatal("chain verified against wrong anchor")
	}
	if _, misses, entries := statsOf(c); misses != 1 || entries != 0 {
		t.Fatalf("failure cached: misses=%d entries=%d", misses, entries)
	}
}

func TestVerifyCacheLRUBound(t *testing.T) {
	admin := newVCAdmin(t)
	c := NewVerifyCache(2)
	fxs := []*vcFixture{
		newVCFixture(t, admin, "a"),
		newVCFixture(t, admin, "b"),
		newVCFixture(t, admin, "c"),
	}
	for _, fx := range fxs {
		if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("capacity not enforced: len=%d", c.Len())
	}
	// "a" was least recently used and must have been evicted: re-verifying it
	// is a miss; "c" is still warm.
	if _, err := c.VerifyCert(admin.CACert(), fxs[2].certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	hitsBefore, missesBefore, _ := statsOf(c)
	if _, err := c.VerifyCert(admin.CACert(), fxs[0].certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := statsOf(c)
	if hits != hitsBefore || misses != missesBefore+1 {
		t.Fatalf("evicted entry served warm: hits %d→%d misses %d→%d", hitsBefore, hits, missesBefore, misses)
	}
}

func TestVerifyCacheInvalidateEntity(t *testing.T) {
	admin := newVCAdmin(t)
	fx1 := newVCFixture(t, admin, "bulb")
	fx2 := newVCFixture(t, admin, "lock")
	c := NewVerifyCache(8)
	now := time.Now()

	for _, fx := range []*vcFixture{fx1, fx2} {
		if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("expected 4 entries, got %d", c.Len())
	}
	if n := c.InvalidateEntity(fx1.id); n != 2 {
		t.Fatalf("InvalidateEntity removed %d entries, want 2", n)
	}
	if c.Len() != 2 {
		t.Fatalf("expected 2 entries after invalidation, got %d", c.Len())
	}
	// fx1 re-verifies cold, fx2 stays warm.
	_, missesBefore, _ := statsOf(c)
	if _, err := c.VerifyCert(admin.CACert(), fx1.certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := statsOf(c); misses != missesBefore+1 {
		t.Fatal("invalidated entry served warm")
	}
	hitsBefore, _, _ := statsOf(c)
	if _, err := c.VerifyCert(admin.CACert(), fx2.certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := statsOf(c); hits != hitsBefore+1 {
		t.Fatal("unrelated entity was invalidated")
	}
	if n := c.InvalidateEntity(IDFromName("never-seen")); n != 0 {
		t.Fatalf("InvalidateEntity on unknown id removed %d", n)
	}
}

func TestVerifyCacheFlush(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "tv")
	c := NewVerifyCache(8)
	if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Flush left %d entries", c.Len())
	}
	_, missesBefore, _ := statsOf(c)
	if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := statsOf(c); misses != missesBefore+1 {
		t.Fatal("flushed entry served warm")
	}
}

func TestVerifyCacheWindowExpiry(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "meter")
	c := NewVerifyCache(8)
	now := time.Now()

	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
		t.Fatal(err)
	}
	// A hit at a time past the profile's Expires must NOT be served from the
	// cache: the entry is evicted and the real path re-runs (and fails, since
	// the window check fails there too).
	late := fx.prof.Expires.Add(time.Hour)
	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), late); err == nil {
		t.Fatal("expired profile served from warm cache")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still cached: len=%d", c.Len())
	}
}

func TestVerifyCacheHierarchyAndStrengthKeying(t *testing.T) {
	root := newVCAdmin(t)
	sub, err := root.NewSubordinate("building-7")
	if err != nil {
		t.Fatal(err)
	}
	fx := newVCFixture(t, sub, "printer")
	c := NewVerifyCache(8)
	now := time.Now()

	// Chain-issued certificate and sub-signed profile verify against the root
	// anchor, and the memoized results hit on repeat.
	if _, err := c.VerifyCert(root.CACert(), fx.certDER, root.Strength()); err != nil {
		t.Fatalf("hierarchical chain: %v", err)
	}
	if _, err := c.VerifyCert(root.CACert(), fx.certDER, root.Strength()); err != nil {
		t.Fatal(err)
	}
	if len(fx.prof.SignerChain) == 0 {
		t.Fatal("fixture profile is not sub-signed")
	}
	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, root.CACert(), root.Public(), now); err != nil {
		t.Fatalf("hierarchical profile: %v", err)
	}
	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, root.CACert(), root.Public(), now); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := statsOf(c); hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	// A different declared strength must key separately (it changes what the
	// real verification accepts), not alias the cached success.
	if _, err := c.VerifyCert(root.CACert(), fx.certDER, suite.S192); err == nil {
		t.Fatal("strength mismatch served from cache")
	}
}

func TestVerifyCacheNilReceiver(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "nilcase")
	var c *VerifyCache

	info, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength())
	if err != nil || info.ID != fx.id {
		t.Fatalf("nil cache VerifyCert: %+v err=%v", info, err)
	}
	if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), time.Now()); err != nil {
		t.Fatalf("nil cache VerifyProfileAnchored: %v", err)
	}
	if hits, misses, entries := statsOf(c); hits != 0 || misses != 0 || entries != 0 {
		t.Fatal("nil cache reported stats")
	}
	if c.Len() != 0 || c.InvalidateEntity(fx.id) != 0 {
		t.Fatal("nil cache mutators misbehaved")
	}
	c.Flush()
	c.Instrument(nil)
}

func TestVerifyCacheInstrument(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "gauge")
	c := NewVerifyCache(8)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	now := time.Now()

	for i := 0; i < 2; i++ {
		if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int64{"cert/hit": 1, "cert/miss": 1, "prof/hit": 1, "prof/miss": 1}
	for _, s := range reg.Snapshot().Metrics {
		if s.Name != obs.MVerifyCacheEvents {
			continue
		}
		k := s.Labels["kind"] + "/" + s.Labels["result"]
		if s.Value != float64(want[k]) {
			t.Fatalf("counter %s = %v, want %d", k, s.Value, want[k])
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("missing counters: %v", want)
	}
	// Detaching stops exposition without affecting behavior.
	c.Instrument(nil)
	if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	admin := newVCAdmin(t)
	fxs := []*vcFixture{
		newVCFixture(t, admin, "c0"),
		newVCFixture(t, admin, "c1"),
		newVCFixture(t, admin, "c2"),
	}
	c := NewVerifyCache(4)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	now := time.Now()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				fx := fxs[(g+i)%len(fxs)]
				switch i % 4 {
				case 0:
					if _, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength()); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), now); err != nil {
						t.Error(err)
						return
					}
				case 2:
					c.InvalidateEntity(fx.id)
				case 3:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("capacity exceeded under concurrency: %d", c.Len())
	}
}

func TestIssueCertChainBatchMatchesSequential(t *testing.T) {
	s := suite.S128
	admin, err := NewAdmin(s, "batch-root")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := admin.NewSubordinate("batch-sub")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	reqs := make([]CertRequest, n)
	for i := range reqs {
		key, err := suite.GenerateSigningKey(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		name := string(rune('a' + i))
		reqs[i] = CertRequest{ID: IDFromName(name), Name: name, Role: RoleObject, Pub: key.Public()}
	}
	chains, err := sub.IssueCertChainBatch(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != n {
		t.Fatalf("got %d chains", len(chains))
	}
	// Every chain verifies against the root, binds the right identity, and
	// carries the serial reserved for its index (request order).
	for i, chain := range chains {
		info, err := VerifyCertChain(admin.CACert(), chain, s)
		if err != nil {
			t.Fatalf("chain %d: %v", i, err)
		}
		if info.ID != reqs[i].ID || info.Name != reqs[i].Name {
			t.Fatalf("chain %d bound to %q, want %q", i, info.Name, reqs[i].Name)
		}
	}
	// Sizes equal the sequential path's (fixed-size signatures), so virtual
	// airtime is identical regardless of worker count.
	seq, err := sub.IssueCertChain(IDFromName("z"), "z", RoleObject, reqs[0].Pub)
	if err != nil {
		t.Fatal(err)
	}
	for i, chain := range chains {
		if len(chain) != len(seq) {
			t.Fatalf("chain %d is %d bytes, sequential is %d", i, len(chain), len(seq))
		}
	}
}

func statsOf(c *VerifyCache) (hits, misses int64, entries int) { return c.Stats() }

// The miss-path singleflight must coalesce concurrent verifications of the
// same credential onto one leader while keeping miss accounting exact:
// every caller records its miss before joining a flight.

func TestVerifyCacheFlightJoinLeave(t *testing.T) {
	c := NewVerifyCache(8)
	key := [32]byte{1}
	fl, leader := c.joinFlight(key)
	if !leader {
		t.Fatal("first join is not leader")
	}
	fl2, leader2 := c.joinFlight(key)
	if leader2 || fl2 != fl {
		t.Fatal("second join did not attach to the in-flight leader")
	}
	sentinel := errors.New("flight failed")
	c.leaveFlight(key, fl, sentinel)
	<-fl2.done // closed: must not block
	if fl2.err != sentinel {
		t.Fatalf("waiter saw err %v, want the leader's error", fl2.err)
	}
	if _, leader3 := c.joinFlight(key); !leader3 {
		t.Fatal("leaveFlight did not clear the flight; next join should lead")
	}
}

func TestVerifyCacheFlightWaiterServedFromStore(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "flight-lamp")
	c := NewVerifyCache(8)

	s := admin.Strength()
	var sb [2]byte
	sb[0], sb[1] = byte(int(s)>>8), byte(int(s))
	key := vcKey(vcKindCert, admin.CACert(), sb[:], fx.certDER)

	fl, leader := c.joinFlight(key)
	if !leader {
		t.Fatal("test did not get the leader slot")
	}
	type res struct {
		info *CertInfo
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		info, err := c.VerifyCert(admin.CACert(), fx.certDER, s)
		ch <- res{info, err}
	}()
	// The concurrent caller records its miss before joining the flight.
	transporttest.WaitUntil(t, 5*time.Second, func() bool {
		_, misses, _ := statsOf(c)
		return misses >= 1
	}, "concurrent caller to record its miss")
	// Leader-style completion: verify, store, release the waiters.
	info, nb, na, err := verifyCertChainWindow(admin.CACert(), fx.certDER, s)
	if err != nil {
		t.Fatal(err)
	}
	c.store(&vcEntry{key: key, kind: vcKindCert, entity: info.ID, info: *info, notBefore: nb, notAfter: na})
	c.leaveFlight(key, fl, nil)

	r := <-ch
	if r.err != nil || r.info == nil || r.info.ID != fx.id {
		t.Fatalf("waiter result: %+v err=%v", r.info, r.err)
	}
	if hits, misses, entries := statsOf(c); hits != 0 || misses != 1 || entries != 1 {
		t.Fatalf("hits=%d misses=%d entries=%d, want 0/1/1", hits, misses, entries)
	}
}

func TestVerifyCacheConcurrentMissAccounting(t *testing.T) {
	admin := newVCAdmin(t)
	fx := newVCFixture(t, admin, "swarm-lamp")
	c := NewVerifyCache(8)

	const g = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*g)
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.VerifyCert(admin.CACert(), fx.certDER, admin.Strength())
			if err == nil && info.ID != fx.id {
				err = errors.New("wrong identity from coalesced verify")
			}
			errs <- err
			errs <- c.VerifyProfileAnchored(fx.prof, fx.profRaw, admin.CACert(), admin.Public(), time.Now())
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Whatever the interleaving, every call was either a hit or a counted
	// miss, and both credentials live in the cache exactly once.
	if hits, misses, entries := statsOf(c); hits+misses != 2*g || entries != 2 {
		t.Fatalf("hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}
