package backendclient

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendsvc"
	"argus/internal/cert"
	"argus/internal/suite"
)

// harness spins a real backendsvc.Server over httptest and returns an
// authenticated client plus the underlying tenant for cross-checking.
func harness(t *testing.T) (*Client, *backendsvc.Tenant) {
	t.Helper()
	store, err := backendsvc.OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := store.Create("acme", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(backendsvc.NewServer(store, "root-key", nil).Handler())
	t.Cleanup(srv.Close)
	return New(srv.URL, "acme", tn.AuthKey()), tn
}

// TestClientServiceRoundTrip drives the full Service surface over the wire
// and checks the remote state matches what the same calls produce locally.
func TestClientServiceRoundTrip(t *testing.T) {
	c, tn := harness(t)
	ctx := context.Background()
	var svc backend.Service = c

	ta, err := svc.TrustAnchor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.PublicKey(); err != nil {
		t.Fatalf("anchor admin key does not decode: %v", err)
	}
	local, _ := tn.TrustAnchor(ctx)
	if string(ta.CACert) != string(local.CACert) {
		t.Fatal("anchor CA differs over the wire")
	}

	alice, rep, err := svc.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("register subject report total %d, want 0 (Table I: add a subject)", rep.Total())
	}
	kiosk, _, err := svc.RegisterObject(ctx, "kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use", "admin"})
	if err != nil {
		t.Fatal(err)
	}
	pid, prep, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"), attr.MustParse("type=='kiosk'"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.NotifiedObjects) != 1 || prep.NotifiedObjects[0] != kiosk {
		t.Fatalf("add policy notified %v, want the governed kiosk", prep.NotifiedObjects)
	}
	gid, err := svc.CreateGroup(ctx, "fellows")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, alice, gid); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddCovertService(ctx, kiosk, gid, []string{"admin"}); err != nil {
		t.Fatal(err)
	}

	// Provision bundles arrive byte-compatible with the in-process path.
	sp, err := svc.ProvisionSubject(ctx, alice)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "alice" || len(sp.Memberships) != 1 {
		t.Fatalf("subject provision %+v", sp)
	}
	if err := sp.Profile.Verify(sp.AdminPub, time.Now()); err != nil {
		t.Fatalf("remote subject PROF does not verify against the anchor key: %v", err)
	}
	op, err := svc.ProvisionObject(ctx, kiosk)
	if err != nil {
		t.Fatal(err)
	}
	if op.Level != backend.L3 || len(op.Variants) != 2 {
		t.Fatalf("object provision: level %v, %d variants (want L2 policy + covert)", op.Level, len(op.Variants))
	}

	if _, err := svc.UpdateSubjectAttrs(ctx, alice, attr.MustSet("position=manager")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RemovePolicy(ctx, pid); err != nil {
		t.Fatal(err)
	}
	rrep, err := svc.RevokeSubject(ctx, alice)
	if err != nil {
		t.Fatal(err)
	}
	_ = rrep

	// The wire fingerprint equals the server's local fingerprint.
	remoteFP, err := svc.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	localFP, _ := tn.StateFingerprint(ctx)
	if remoteFP != localFP {
		t.Fatalf("fingerprints differ: wire %s local %s", remoteFP, localFP)
	}
}

// TestClientErrorMapping pins the wire error contract: every sentinel
// survives the HTTP round trip for errors.Is, with the server's message.
func TestClientErrorMapping(t *testing.T) {
	c, _ := harness(t)
	ctx := context.Background()
	ghost := cert.IDFromName("nobody")

	if _, _, err := c.RegisterSubject(ctx, "dup", attr.Set{}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		op       func() error
		sentinel error
	}{
		{"not found", func() error { _, err := c.ProvisionSubject(ctx, ghost); return err },
			backend.ErrNotFound},
		{"duplicate", func() error { _, _, err := c.RegisterSubject(ctx, "dup", attr.Set{}); return err },
			backend.ErrDuplicate},
		{"invalid level", func() error {
			_, _, err := c.RegisterObject(ctx, "x", backend.Level(9), attr.Set{}, nil)
			return err
		}, backend.ErrInvalidLevel},
		{"bad predicate", func() error {
			_, _, err := c.AddPolicy(ctx, nil, nil, nil)
			return err
		}, backend.ErrBadPredicate},
		{"policy not found", func() error { _, err := c.RemovePolicy(ctx, 999); return err },
			backend.ErrNotFound},
		{"not covert", func() error {
			id, _, err := c.RegisterObject(ctx, "printer", backend.L2, attr.Set{}, nil)
			if err != nil {
				return err
			}
			gid, err := c.CreateGroup(ctx, "g")
			if err != nil {
				return err
			}
			return c.AddCovertService(ctx, id, gid, nil)
		}, backend.ErrNotCovert},
		{"revoked", func() error {
			id, _, err := c.RegisterSubject(ctx, "mallory", attr.Set{})
			if err != nil {
				return err
			}
			if _, err := c.RevokeSubject(ctx, id); err != nil {
				return err
			}
			_, err = c.ProvisionSubject(ctx, id)
			return err
		}, backend.ErrRevoked},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.op()
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false over the wire", err, tc.sentinel)
			}
			if err.Error() == "" || err.Error() == tc.sentinel.Error() {
				t.Fatalf("remote message lost: %q", err)
			}
		})
	}
}

// TestClientAuth pins the auth surface: wrong tenant key, missing tenant,
// wrong admin key.
func TestClientAuth(t *testing.T) {
	c, _ := harness(t)
	ctx := context.Background()

	bad := New(c.base, "acme", "wrong-key", WithHTTPClient(c.hc))
	if _, _, err := bad.RegisterSubject(ctx, "x", attr.Set{}); !errors.Is(err, backendsvc.ErrUnauthorized) {
		t.Fatalf("wrong key: %v", err)
	}
	// The anchor is public material: no key needed.
	anon := New(c.base, "acme", "")
	if _, err := anon.TrustAnchor(ctx); err != nil {
		t.Fatalf("anchor should not need auth: %v", err)
	}
	// But nothing else is.
	if _, err := anon.StateFingerprint(ctx); !errors.Is(err, backendsvc.ErrUnauthorized) {
		t.Fatalf("fingerprint without key: %v", err)
	}
	ghostTenant := New(c.base, "ghost", "k")
	if _, err := ghostTenant.TrustAnchor(ctx); !errors.Is(err, backendsvc.ErrNoTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}

	admin := NewAdmin(c.base, "root-key")
	key, err := admin.CreateTenant(ctx, "beta", suite.S128, 4)
	if err != nil {
		t.Fatal(err)
	}
	beta := New(c.base, "beta", key)
	if _, _, err := beta.RegisterSubject(ctx, "bob", attr.Set{}); err != nil {
		t.Fatal(err)
	}
	wrongAdmin := NewAdmin(c.base, "not-root")
	if _, err := wrongAdmin.CreateTenant(ctx, "gamma", suite.S128, 0); !errors.Is(err, backendsvc.ErrUnauthorized) {
		t.Fatalf("wrong admin key: %v", err)
	}
}

// TestClientContextCancellation: a canceled context aborts the RPC.
func TestClientContextCancellation(t *testing.T) {
	c, _ := harness(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TrustAnchor(ctx); err == nil {
		t.Fatal("canceled context should fail the call")
	}
}
