// Package backendclient is the HTTP implementation of backend.Service: it
// speaks the /v1 surface of internal/backendsvc, so cmd/argus-node and the
// load harness can bootstrap from a live argus-backend daemon exactly as
// they would from an in-process backend (backend.Local) — same interface,
// same sentinel errors, same binary provision bundles.
package backendclient

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendsvc"
	"argus/internal/cert"
	"argus/internal/groups"
	"argus/internal/suite"
)

// Client talks to one tenant namespace of an argus-backend daemon.
type Client struct {
	base    string // e.g. "http://127.0.0.1:8477"
	tenant  string
	authKey string
	hc      *http.Client
}

// Option customizes New.
type Option func(*Client)

// WithHTTPClient overrides the underlying *http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New builds a client for the tenant namespace at base.
func New(base, tenant, authKey string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimSuffix(base, "/"),
		tenant:  tenant,
		authKey: authKey,
		hc:      http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// remoteError carries the server's message while unwrapping to the backend
// sentinel its wire code names, so errors.Is works identically on both
// sides of the wire.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// do runs one request and decodes the response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set(backendsvc.TenantHeader, c.tenant)
	if c.authKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.authKey)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("backendclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("backendclient: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			if sentinel := backendsvc.SentinelFor(eb.Code); sentinel != nil {
				return &remoteError{msg: eb.Error, sentinel: sentinel}
			}
			return fmt.Errorf("backendclient: %s %s: %s", method, path, eb.Error)
		}
		return fmt.Errorf("backendclient: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("backendclient: %s %s: decode: %w", method, path, err)
	}
	return nil
}

type wireReport struct {
	NotifiedObjects  []string `json:"notified_objects"`
	NotifiedSubjects []string `json:"notified_subjects"`
	Total            int      `json:"total"`
}

func (r wireReport) toReport() (backend.UpdateReport, error) {
	var rep backend.UpdateReport
	for _, s := range r.NotifiedObjects {
		id, err := backendsvc.ParseID(s)
		if err != nil {
			return rep, err
		}
		rep.NotifiedObjects = append(rep.NotifiedObjects, id)
	}
	for _, s := range r.NotifiedSubjects {
		id, err := backendsvc.ParseID(s)
		if err != nil {
			return rep, err
		}
		rep.NotifiedSubjects = append(rep.NotifiedSubjects, id)
	}
	return rep, nil
}

// --- backend.Service ---

func (c *Client) TrustAnchor(ctx context.Context) (backend.TrustAnchor, error) {
	var out struct {
		Strength int    `json:"strength"`
		CACert   string `json:"ca_cert"`
		AdminPub string `json:"admin_pub"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/anchor", nil, &out); err != nil {
		return backend.TrustAnchor{}, err
	}
	ca, err := base64.StdEncoding.DecodeString(out.CACert)
	if err != nil {
		return backend.TrustAnchor{}, fmt.Errorf("backendclient: anchor ca_cert: %w", err)
	}
	pub, err := base64.StdEncoding.DecodeString(out.AdminPub)
	if err != nil {
		return backend.TrustAnchor{}, fmt.Errorf("backendclient: anchor admin_pub: %w", err)
	}
	return backend.TrustAnchor{Strength: suite.Strength(out.Strength), CACert: ca, AdminPub: pub}, nil
}

func (c *Client) RegisterSubject(ctx context.Context, name string, attrs attr.Set) (cert.ID, backend.UpdateReport, error) {
	var out struct {
		ID     string     `json:"id"`
		Report wireReport `json:"report"`
	}
	body := map[string]string{"name": name, "attrs": attrs.String()}
	if err := c.do(ctx, http.MethodPost, "/v1/subjects", body, &out); err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	id, err := backendsvc.ParseID(out.ID)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	rep, err := out.Report.toReport()
	return id, rep, err
}

func (c *Client) RegisterObject(ctx context.Context, name string, level backend.Level, attrs attr.Set, functions []string) (cert.ID, backend.UpdateReport, error) {
	var out struct {
		ID     string     `json:"id"`
		Report wireReport `json:"report"`
	}
	body := map[string]any{
		"name": name, "level": int(level), "attrs": attrs.String(), "functions": functions,
	}
	if err := c.do(ctx, http.MethodPost, "/v1/objects", body, &out); err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	id, err := backendsvc.ParseID(out.ID)
	if err != nil {
		return cert.ID{}, backend.UpdateReport{}, err
	}
	rep, err := out.Report.toReport()
	return id, rep, err
}

func (c *Client) provision(ctx context.Context, kind string, id cert.ID) ([]byte, error) {
	var out struct {
		Blob string `json:"blob"`
	}
	path := fmt.Sprintf("/v1/%s/%s/provision", kind, id.String())
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	blob, err := base64.StdEncoding.DecodeString(out.Blob)
	if err != nil {
		return nil, fmt.Errorf("backendclient: provision blob: %w", err)
	}
	return blob, nil
}

func (c *Client) ProvisionSubject(ctx context.Context, id cert.ID) (*backend.SubjectProvision, error) {
	blob, err := c.provision(ctx, "subjects", id)
	if err != nil {
		return nil, err
	}
	return backend.DecodeSubjectProvision(blob)
}

func (c *Client) ProvisionObject(ctx context.Context, id cert.ID) (*backend.ObjectProvision, error) {
	blob, err := c.provision(ctx, "objects", id)
	if err != nil {
		return nil, err
	}
	return backend.DecodeObjectProvision(blob)
}

func (c *Client) AddPolicy(ctx context.Context, subjectPred, objectPred *attr.Predicate, rights []string) (uint64, backend.UpdateReport, error) {
	if subjectPred == nil || objectPred == nil {
		return 0, backend.UpdateReport{}, fmt.Errorf("%w: policy predicates required", backend.ErrBadPredicate)
	}
	var out struct {
		ID     uint64     `json:"id"`
		Report wireReport `json:"report"`
	}
	body := map[string]any{
		"subject": subjectPred.String(), "object": objectPred.String(), "rights": rights,
	}
	if err := c.do(ctx, http.MethodPost, "/v1/policies", body, &out); err != nil {
		return 0, backend.UpdateReport{}, err
	}
	rep, err := out.Report.toReport()
	return out.ID, rep, err
}

func (c *Client) RemovePolicy(ctx context.Context, id uint64) (backend.UpdateReport, error) {
	var out struct {
		Report wireReport `json:"report"`
	}
	if err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/policies/%d", id), nil, &out); err != nil {
		return backend.UpdateReport{}, err
	}
	return out.Report.toReport()
}

func (c *Client) RevokeSubject(ctx context.Context, id cert.ID) (backend.UpdateReport, error) {
	var out struct {
		Report wireReport `json:"report"`
	}
	if err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/subjects/%s/revoke", id.String()), struct{}{}, &out); err != nil {
		return backend.UpdateReport{}, err
	}
	return out.Report.toReport()
}

func (c *Client) UpdateSubjectAttrs(ctx context.Context, id cert.ID, attrs attr.Set) (backend.UpdateReport, error) {
	var out struct {
		Report wireReport `json:"report"`
	}
	body := map[string]string{"attrs": attrs.String()}
	if err := c.do(ctx, http.MethodPut, fmt.Sprintf("/v1/subjects/%s/attrs", id.String()), body, &out); err != nil {
		return backend.UpdateReport{}, err
	}
	return out.Report.toReport()
}

func (c *Client) CreateGroup(ctx context.Context, description string) (groups.ID, error) {
	var out struct {
		ID uint64 `json:"id"`
	}
	body := map[string]string{"description": description}
	if err := c.do(ctx, http.MethodPost, "/v1/groups", body, &out); err != nil {
		return 0, err
	}
	return groups.ID(out.ID), nil
}

func (c *Client) AddSubjectToGroup(ctx context.Context, subject cert.ID, gid groups.ID) error {
	body := map[string]string{"subject": subject.String()}
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/groups/%d/subjects", uint64(gid)), body, nil)
}

func (c *Client) AddCovertService(ctx context.Context, object cert.ID, gid groups.ID, functions []string) error {
	body := map[string]any{"object": object.String(), "functions": functions}
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/groups/%d/covert", uint64(gid)), body, nil)
}

func (c *Client) StateFingerprint(ctx context.Context) (string, error) {
	var out struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/fingerprint", nil, &out); err != nil {
		return "", err
	}
	return out.Fingerprint, nil
}

var _ backend.Service = (*Client)(nil)

// Admin is a thin client for the tenant-administration routes (server admin
// key, not a tenant key).
type Admin struct {
	base     string
	adminKey string
	hc       *http.Client
}

// NewAdmin builds a tenant-administration client.
func NewAdmin(base, adminKey string, opts ...Option) *Admin {
	c := New(base, "", adminKey, opts...)
	return &Admin{base: c.base, adminKey: adminKey, hc: c.hc}
}

// CreateTenant provisions a tenant namespace, returning its bearer key.
func (a *Admin) CreateTenant(ctx context.Context, name string, strength suite.Strength, shards int) (authKey string, err error) {
	blob, err := json.Marshal(map[string]any{
		"name": name, "strength": int(strength), "shards": shards,
	})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.base+"/v1/tenants", bytes.NewReader(blob))
	if err != nil {
		return "", err
	}
	req.Header.Set("Authorization", "Bearer "+a.adminKey)
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated {
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			if sentinel := backendsvc.SentinelFor(eb.Code); sentinel != nil {
				return "", &remoteError{msg: eb.Error, sentinel: sentinel}
			}
			return "", fmt.Errorf("backendclient: create tenant: %s", eb.Error)
		}
		return "", fmt.Errorf("backendclient: create tenant: HTTP %d", resp.StatusCode)
	}
	var out struct {
		AuthKey string `json:"auth_key"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return "", err
	}
	return out.AuthKey, nil
}
