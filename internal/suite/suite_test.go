package suite

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestStrengthCurveMapping(t *testing.T) {
	wantBits := map[Strength]int{S112: 224, S128: 256, S192: 384, S256: 521}
	for s, bits := range wantBits {
		if got := s.Curve().Params().BitSize; got != bits {
			t.Errorf("%v: curve bit size = %d, want %d", s, got, bits)
		}
	}
}

func TestStrengthValid(t *testing.T) {
	for _, s := range Strengths {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	for _, s := range []Strength{0, 1, 100, 127, 129, 512} {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestWireSizesAt128Bit(t *testing.T) {
	// §IX-A: at 128-bit strength KEXM and SIG are 64 B, R_X 28 B, MAC 32 B.
	if got := S128.PointSize(); got != 64 {
		t.Errorf("PointSize = %d, want 64", got)
	}
	if got := S128.SignatureSize(); got != 64 {
		t.Errorf("SignatureSize = %d, want 64", got)
	}
	if NonceSize != 28 {
		t.Errorf("NonceSize = %d, want 28", NonceSize)
	}
	if MACSize != 32 {
		t.Errorf("MACSize = %d, want 32", MACSize)
	}
}

func TestSignVerify(t *testing.T) {
	for _, s := range Strengths {
		key, err := GenerateSigningKey(s, nil)
		if err != nil {
			t.Fatalf("%v: GenerateSigningKey: %v", s, err)
		}
		msg := []byte("argus discovery message")
		sig, err := key.Sign(msg)
		if err != nil {
			t.Fatalf("%v: Sign: %v", s, err)
		}
		if len(sig) != s.SignatureSize() {
			t.Errorf("%v: signature length = %d, want %d", s, len(sig), s.SignatureSize())
		}
		pub := key.Public()
		if !pub.Verify(msg, sig) {
			t.Errorf("%v: valid signature rejected", s)
		}
		if pub.Verify([]byte("tampered"), sig) {
			t.Errorf("%v: signature verified for altered message", s)
		}
		sig[0] ^= 1
		if pub.Verify(msg, sig) {
			t.Errorf("%v: tampered signature accepted", s)
		}
	}
}

func TestSignatureNotVerifiableByOtherKey(t *testing.T) {
	a, _ := GenerateSigningKey(S128, nil)
	b, _ := GenerateSigningKey(S128, nil)
	msg := []byte("impersonation attempt")
	sig, _ := a.Sign(msg)
	if b.Public().Verify(msg, sig) {
		t.Fatal("signature by A accepted under B's public key")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	key, _ := GenerateSigningKey(S128, nil)
	pub := key.Public()
	parsed, err := PublicKeyFromBytes(S128, pub.Bytes())
	if err != nil {
		t.Fatalf("PublicKeyFromBytes: %v", err)
	}
	if !parsed.Equal(pub) {
		t.Fatal("round-tripped public key differs")
	}
}

func TestPublicKeyRejectsOffCurve(t *testing.T) {
	b := make([]byte, S128.PointSize())
	b[0] = 1 // x=1<<..., y=0: not on P-256
	if _, err := PublicKeyFromBytes(S128, b); err == nil {
		t.Fatal("off-curve point accepted")
	}
	if _, err := PublicKeyFromBytes(S128, b[:10]); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestECDHAgreement(t *testing.T) {
	for _, s := range Strengths {
		a, err := NewKeyExchange(s, nil)
		if err != nil {
			t.Fatalf("%v: NewKeyExchange: %v", s, err)
		}
		b, err := NewKeyExchange(s, nil)
		if err != nil {
			t.Fatalf("%v: NewKeyExchange: %v", s, err)
		}
		if got := len(a.Public()); got != s.PointSize() {
			t.Errorf("%v: KEXM length = %d, want %d", s, got, s.PointSize())
		}
		sa, err := a.Shared(b.Public())
		if err != nil {
			t.Fatalf("%v: Shared: %v", s, err)
		}
		sb, err := b.Shared(a.Public())
		if err != nil {
			t.Fatalf("%v: Shared: %v", s, err)
		}
		if !bytes.Equal(sa, sb) {
			t.Errorf("%v: shared secrets differ", s)
		}
		c, _ := NewKeyExchange(s, nil)
		sc, _ := c.Shared(a.Public())
		if bytes.Equal(sa, sc) {
			t.Errorf("%v: unrelated exchange produced same secret", s)
		}
	}
}

func TestECDHRejectsBadPeer(t *testing.T) {
	a, _ := NewKeyExchange(S128, nil)
	bad := make([]byte, S128.PointSize())
	bad[3] = 7
	if _, err := a.Shared(bad); err == nil {
		t.Fatal("off-curve peer KEXM accepted")
	}
}

func TestPRFDeterministicAndSized(t *testing.T) {
	secret := []byte("secret")
	seed := []byte("seed")
	a := PRF(secret, seed, 32)
	b := PRF(secret, seed, 32)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		if got := len(PRF(secret, seed, n)); got != n {
			t.Errorf("PRF size %d: got %d bytes", n, got)
		}
	}
	if bytes.Equal(PRF(secret, seed, 32), PRF(secret, []byte("seed2"), 32)) {
		t.Fatal("PRF ignores seed")
	}
	if bytes.Equal(PRF(secret, seed, 32), PRF([]byte("other"), seed, 32)) {
		t.Fatal("PRF ignores secret")
	}
	// Longer outputs extend shorter ones' prefix (counter construction).
	long := PRF(secret, seed, 64)
	if !bytes.Equal(long[:32], a) {
		t.Fatal("PRF long output does not extend short output")
	}
}

func TestSessionKeySchedule(t *testing.T) {
	preK := []byte("premaster-secret-material-000000")
	rs := bytes.Repeat([]byte{1}, NonceSize)
	ro := bytes.Repeat([]byte{2}, NonceSize)
	k2 := SessionKey2(preK, rs, ro)
	if len(k2) != KeySize {
		t.Fatalf("K2 length = %d", len(k2))
	}
	// Same inputs → same K2; different nonce → different K2.
	if !bytes.Equal(k2, SessionKey2(preK, rs, ro)) {
		t.Fatal("K2 not deterministic")
	}
	ro2 := bytes.Repeat([]byte{3}, NonceSize)
	if bytes.Equal(k2, SessionKey2(preK, rs, ro2)) {
		t.Fatal("K2 ignores R_O (replay would be possible)")
	}

	grp := bytes.Repeat([]byte{9}, KeySize)
	k3 := SessionKey3(k2, grp, rs, ro)
	if bytes.Equal(k2, k3) {
		t.Fatal("K3 equals K2")
	}
	grp2 := bytes.Repeat([]byte{8}, KeySize)
	if bytes.Equal(k3, SessionKey3(k2, grp2, rs, ro)) {
		t.Fatal("K3 ignores group key — non-fellows would derive the same key")
	}
}

func TestFinishedMAC(t *testing.T) {
	key := bytes.Repeat([]byte{5}, KeySize)
	h := sha256.Sum256([]byte("transcript"))
	mac := FinishedMAC(key, LabelSubjectFinished, h)
	if len(mac) != MACSize {
		t.Fatalf("MAC length = %d", len(mac))
	}
	if !VerifyMAC(key, LabelSubjectFinished, h, mac) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(key, LabelObjectFinished, h, mac) {
		t.Fatal("MAC valid under wrong label")
	}
	other := bytes.Repeat([]byte{6}, KeySize)
	if VerifyMAC(other, LabelSubjectFinished, h, mac) {
		t.Fatal("MAC valid under wrong key")
	}
	h2 := sha256.Sum256([]byte("transcript-tampered"))
	if VerifyMAC(key, LabelSubjectFinished, h2, mac) {
		t.Fatal("MAC valid under wrong transcript")
	}
}

func TestProfileCipherRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{7}, KeySize)
	for _, n := range []int{0, 1, 15, 16, 17, 200, 1000} {
		plain := bytes.Repeat([]byte{0xAB}, n)
		ct, err := EncryptProfile(key, plain, nil)
		if err != nil {
			t.Fatalf("n=%d: EncryptProfile: %v", n, err)
		}
		if len(ct) != CiphertextLen(n) {
			t.Errorf("n=%d: ciphertext length = %d, want %d", n, len(ct), CiphertextLen(n))
		}
		got, err := DecryptProfile(key, ct)
		if err != nil {
			t.Fatalf("n=%d: DecryptProfile: %v", n, err)
		}
		if !bytes.Equal(got, plain) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestProfileCipherRejectsWrongKeyAndTampering(t *testing.T) {
	key := bytes.Repeat([]byte{7}, KeySize)
	wrong := bytes.Repeat([]byte{8}, KeySize)
	ct, _ := EncryptProfile(key, []byte("service information"), nil)
	if _, err := DecryptProfile(wrong, ct); err == nil {
		t.Fatal("decryption under wrong key succeeded")
	}
	for _, i := range []int{0, 16, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 1
		if _, err := DecryptProfile(key, bad); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	if _, err := DecryptProfile(key, ct[:20]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestCiphertextLenMatchesPaperAccounting(t *testing.T) {
	// Paper §IX-A: 200 B PROF → 16 B IV + body + 32 B MAC. The paper reports
	// 248 B (ignoring CBC padding); the true value is 256 B.
	if got := CiphertextLen(200); got != 256 {
		t.Fatalf("CiphertextLen(200) = %d, want 256", got)
	}
}

func TestNonceAndGroupKeyGeneration(t *testing.T) {
	a, err := NewNonce(nil)
	if err != nil || len(a) != NonceSize {
		t.Fatalf("NewNonce: %v len=%d", err, len(a))
	}
	b, _ := NewNonce(nil)
	if bytes.Equal(a, b) {
		t.Fatal("two nonces identical")
	}
	g, err := NewGroupKey(nil)
	if err != nil || len(g) != KeySize {
		t.Fatalf("NewGroupKey: %v len=%d", err, len(g))
	}
}

// Property: the profile cipher round-trips arbitrary plaintexts.
func TestProfileCipherRoundTripProperty(t *testing.T) {
	key := bytes.Repeat([]byte{3}, KeySize)
	f := func(plain []byte) bool {
		ct, err := EncryptProfile(key, plain, nil)
		if err != nil {
			return false
		}
		got, err := DecryptProfile(key, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the key schedule separates sessions — different nonce pairs never
// collide on K2 for the same premaster secret.
func TestSessionKeySeparationProperty(t *testing.T) {
	preK := bytes.Repeat([]byte{1}, 32)
	f := func(a, b [NonceSize]byte) bool {
		if a == b {
			return true
		}
		return !bytes.Equal(SessionKey2(preK, a[:], b[:]), SessionKey2(preK, b[:], a[:]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSigningKeyMarshalRoundTrip(t *testing.T) {
	for _, s := range Strengths {
		key, _ := GenerateSigningKey(s, nil)
		b := key.Marshal()
		got, err := UnmarshalSigningKey(b)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// The restored key signs verifiably under the original public key.
		msg := []byte("persistence check")
		sig, err := got.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		if !key.Public().Verify(msg, sig) {
			t.Fatalf("%v: restored key signs differently", s)
		}
		if !got.Public().Equal(key.Public()) {
			t.Fatalf("%v: restored public key differs", s)
		}
	}
	if _, err := UnmarshalSigningKey(nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := UnmarshalSigningKey([]byte{0, 99, 1, 2}); err == nil {
		t.Error("bad strength accepted")
	}
	zero := make([]byte, 2+S128.CoordinateSize())
	zero[0], zero[1] = 0, 128
	if _, err := UnmarshalSigningKey(zero); err == nil {
		t.Error("zero scalar accepted")
	}
}
