package suite

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"io"
)

// Profile encryption: AES-256-CBC with a random 16-byte IV followed by a
// 32-byte HMAC-SHA-256 over IV‖ciphertext (encrypt-then-MAC), matching the
// paper's §IX-A accounting ("AES in CBC mode with 16-byte IV and 32-byte
// MAC"). The encryption and MAC keys are derived from the session key so a
// single K2/K3 drives both.
//
// Note: the paper's 248 B figure for a 200 B profile omits CBC block padding;
// the real ciphertext is 16 (IV) + pad16(200+1..16) + 32 (MAC). EXPERIMENTS.md
// records the delta.

var errCipher = errors.New("suite: profile ciphertext invalid")

// CiphertextLen returns the exact ciphertext length for a plaintext of
// n bytes: IV + PKCS#7-padded body + MAC.
func CiphertextLen(n int) int {
	padded := n + aes.BlockSize - n%aes.BlockSize
	return aes.BlockSize + padded + MACSize
}

func cipherKeys(sessionKey []byte) (encKey, macKey []byte) {
	encKey = PRF(sessionKey, []byte("profile encryption"), 32)
	macKey = PRF(sessionKey, []byte("profile integrity"), 32)
	return
}

// EncryptProfile encrypts plaintext under the session key. rng supplies the
// IV (crypto/rand.Reader if nil).
func EncryptProfile(sessionKey, plaintext []byte, rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	encKey, macKey := cipherKeys(sessionKey)
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	pad := aes.BlockSize - len(plaintext)%aes.BlockSize
	body := make([]byte, len(plaintext)+pad)
	copy(body, plaintext)
	for i := len(plaintext); i < len(body); i++ {
		body[i] = byte(pad)
	}
	out := make([]byte, aes.BlockSize+len(body)+MACSize)
	iv := out[:aes.BlockSize]
	if _, err := io.ReadFull(rng, iv); err != nil {
		return nil, err
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[aes.BlockSize:aes.BlockSize+len(body)], body)
	m := hmac.New(sha256.New, macKey)
	m.Write(out[:aes.BlockSize+len(body)])
	copy(out[aes.BlockSize+len(body):], m.Sum(nil))
	return out, nil
}

// DecryptProfile verifies and decrypts a profile ciphertext. It returns
// an error if the MAC does not verify under the session key — which is how a
// subject detects she derived the wrong key (e.g. tried K2 against a Level 3
// fellow response).
func DecryptProfile(sessionKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < aes.BlockSize+aes.BlockSize+MACSize {
		return nil, errCipher
	}
	encKey, macKey := cipherKeys(sessionKey)
	macStart := len(ciphertext) - MACSize
	m := hmac.New(sha256.New, macKey)
	m.Write(ciphertext[:macStart])
	if !hmac.Equal(m.Sum(nil), ciphertext[macStart:]) {
		return nil, errCipher
	}
	body := ciphertext[aes.BlockSize:macStart]
	if len(body)%aes.BlockSize != 0 {
		return nil, errCipher
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, len(body))
	cipher.NewCBCDecrypter(block, ciphertext[:aes.BlockSize]).CryptBlocks(plain, body)
	pad := int(plain[len(plain)-1])
	if pad < 1 || pad > aes.BlockSize || pad > len(plain) {
		return nil, errCipher
	}
	for _, b := range plain[len(plain)-pad:] {
		if int(b) != pad {
			return nil, errCipher
		}
	}
	return plain[:len(plain)-pad], nil
}

// NewNonce returns a fresh NonceSize-byte random value (R_S or R_O). rng
// defaults to crypto/rand.Reader.
func NewNonce(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	n := make([]byte, NonceSize)
	if _, err := io.ReadFull(rng, n); err != nil {
		return nil, err
	}
	return n, nil
}

// NewGroupKey returns a fresh KeySize-byte symmetric secret-group key (or
// cover-up key — the two are deliberately indistinguishable: both are
// uniformly random byte strings, §VI-B).
func NewGroupKey(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k := make([]byte, KeySize)
	if _, err := io.ReadFull(rng, k); err != nil {
		return nil, err
	}
	return k, nil
}
