package suite

import (
	"testing"
)

func benchKeys(t *testing.T) (*SigningKey, *SigningKey) {
	t.Helper()
	k1, err := GenerateSigningKey(S128, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateSigningKey(S128, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k1, k2
}

func signed(t *testing.T, k *SigningKey, msg string) VerifyItem {
	t.Helper()
	sig, err := k.Sign([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	return VerifyItem{Key: k.Public(), Msg: []byte(msg), Sig: sig}
}

func TestBatchVerify(t *testing.T) {
	k1, k2 := benchKeys(t)
	a := signed(t, k1, "alpha")
	b := signed(t, k2, "beta")

	if !BatchVerify(nil) {
		t.Error("empty batch must verify trivially")
	}
	if !BatchVerify([]VerifyItem{a}) {
		t.Error("single valid item rejected")
	}
	// Duplicates are verified once but the batch outcome is unchanged.
	if !BatchVerify([]VerifyItem{a, b, a, a, b}) {
		t.Error("valid batch with duplicates rejected")
	}

	bad := a
	bad.Sig = append([]byte(nil), a.Sig...)
	bad.Sig[3] ^= 0x40
	if BatchVerify([]VerifyItem{bad}) {
		t.Error("corrupted single item accepted")
	}
	if BatchVerify([]VerifyItem{b, bad, a}) {
		t.Error("batch containing a corrupted item accepted")
	}
	// Cross-wiring key and message must fail like individual Verify does.
	cross := VerifyItem{Key: k2.Public(), Msg: a.Msg, Sig: a.Sig}
	if BatchVerify([]VerifyItem{a, cross}) {
		t.Error("signature accepted under the wrong key")
	}
}

func TestVerifyMemo(t *testing.T) {
	k1, _ := benchKeys(t)
	a := signed(t, k1, "artifact")

	var nilMemo *VerifyMemo
	if !nilMemo.Verify(a.Key, a.Msg, a.Sig) {
		t.Error("nil memo must verify directly")
	}

	vm := NewVerifyMemo(0)
	if !vm.Verify(a.Key, a.Msg, a.Sig) {
		t.Fatal("first (miss) verification failed")
	}
	if len(vm.m) != 1 {
		t.Fatalf("memo holds %d entries after one success, want 1", len(vm.m))
	}
	if !vm.Verify(a.Key, a.Msg, a.Sig) {
		t.Error("memo hit rejected")
	}
	if len(vm.m) != 1 {
		t.Errorf("memo grew on a hit: %d entries", len(vm.m))
	}

	// Failures are never remembered: same inputs keep failing.
	bad := append([]byte(nil), a.Sig...)
	bad[0] ^= 0x01
	for i := 0; i < 2; i++ {
		if vm.Verify(a.Key, a.Msg, bad) {
			t.Fatal("corrupted signature accepted")
		}
	}
	if len(vm.m) != 1 {
		t.Errorf("failure was cached: %d entries", len(vm.m))
	}
}

func TestVerifyMemoCapacityReset(t *testing.T) {
	k1, _ := benchKeys(t)
	vm := NewVerifyMemo(2)
	msgs := []string{"one", "two", "three"}
	for _, m := range msgs {
		it := signed(t, k1, m)
		if !vm.Verify(it.Key, it.Msg, it.Sig) {
			t.Fatalf("verify %q failed", m)
		}
	}
	// Wholesale eviction: hitting capacity resets the map, so after the
	// third insert only the newest entry remains.
	if len(vm.m) != 1 {
		t.Errorf("memo holds %d entries after reset, want 1", len(vm.m))
	}
}

func TestSigningKeyAccessors(t *testing.T) {
	k, _ := benchKeys(t)
	if k.Strength() != S128 {
		t.Errorf("Strength() = %v, want %v", k.Strength(), S128)
	}
	if k.StdPrivate() == nil {
		t.Error("StdPrivate() = nil")
	}
	p := k.Public()
	if p.Strength() != S128 {
		t.Errorf("public Strength() = %v", p.Strength())
	}
	if p.IsZero() {
		t.Error("generated public key reported zero")
	}
	if !(PublicKey{}).IsZero() {
		t.Error("zero-value public key not reported zero")
	}
	if got := S128.String(); got != "128-bit" {
		t.Errorf("S128.String() = %q", got)
	}
}
