package suite

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"io"
	"math/big"
)

// SigningKey is an ECDSA private key with fixed-width wire encodings.
// Argus fixes authentication at ECDSA (the paper rejects RSA as 18x slower
// at 128-bit strength, §IX-B).
type SigningKey struct {
	strength Strength
	priv     *ecdsa.PrivateKey
}

// GenerateSigningKey creates a new ECDSA key at the given strength using
// entropy from rng (crypto/rand.Reader if nil).
func GenerateSigningKey(s Strength, rng io.Reader) (*SigningKey, error) {
	if !s.Valid() {
		return nil, errors.New("suite: invalid strength")
	}
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(s.Curve(), rng)
	if err != nil {
		return nil, err
	}
	return &SigningKey{strength: s, priv: priv}, nil
}

// Strength returns the key's security strength.
func (k *SigningKey) Strength() Strength { return k.strength }

// Marshal encodes the private key as strength ‖ fixed-width D scalar, for
// the backend's persistent store (never sent on any wire).
func (k *SigningKey) Marshal() []byte {
	cs := k.strength.CoordinateSize()
	out := make([]byte, 2+cs)
	out[0] = byte(int(k.strength) >> 8)
	out[1] = byte(int(k.strength))
	k.priv.D.FillBytes(out[2:])
	return out
}

// UnmarshalSigningKey restores a key marshaled by Marshal.
func UnmarshalSigningKey(b []byte) (*SigningKey, error) {
	if len(b) < 2 {
		return nil, errors.New("suite: truncated signing key")
	}
	s := Strength(int(b[0])<<8 | int(b[1]))
	if !s.Valid() {
		return nil, errors.New("suite: bad strength in signing key")
	}
	cs := s.CoordinateSize()
	if len(b) != 2+cs {
		return nil, errors.New("suite: wrong signing key length")
	}
	d := new(big.Int).SetBytes(b[2:])
	curve := s.Curve()
	if d.Sign() == 0 || d.Cmp(curve.Params().N) >= 0 {
		return nil, errors.New("suite: signing key scalar out of range")
	}
	priv := new(ecdsa.PrivateKey)
	priv.Curve = curve
	priv.D = d
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return &SigningKey{strength: s, priv: priv}, nil
}

// Public returns the fixed-width X‖Y encoding of the public key.
func (k *SigningKey) Public() PublicKey {
	return PublicKey{
		strength: k.strength,
		bytes:    marshalPoint(k.strength, k.priv.PublicKey.X, k.priv.PublicKey.Y),
		std:      &k.priv.PublicKey,
	}
}

// StdPrivate exposes the underlying ecdsa key (used by the cert package to
// drive crypto/x509).
func (k *SigningKey) StdPrivate() *ecdsa.PrivateKey { return k.priv }

// Sign produces a fixed-width r‖s ECDSA signature over SHA-256(msg).
func (k *SigningKey) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, err
	}
	cs := k.strength.CoordinateSize()
	sig := make([]byte, 2*cs)
	r.FillBytes(sig[:cs])
	s.FillBytes(sig[cs:])
	return sig, nil
}

// PublicKey is a fixed-width encoded ECDSA public key. Construction parses
// and validates the point once and caches the stdlib form: Verify on a
// 128-bit key otherwise spends ~15% of its time re-deriving big.Int
// coordinates and re-checking curve membership, which at fleet scale turned
// every cache-primed handshake into four redundant point parses. The cache
// rides along value copies (it is a pointer), is invisible to Equal/Bytes/
// Marshal, and a zero or hand-rolled PublicKey simply falls back to parsing
// in Verify.
type PublicKey struct {
	strength Strength
	bytes    []byte
	std      *ecdsa.PublicKey
}

// PublicKeyFromBytes parses a fixed-width X‖Y public key at strength s.
func PublicKeyFromBytes(s Strength, b []byte) (PublicKey, error) {
	if !s.Valid() {
		return PublicKey{}, errors.New("suite: invalid strength")
	}
	if len(b) != s.PointSize() {
		return PublicKey{}, errors.New("suite: wrong public key length")
	}
	x, y, err := unmarshalPoint(s, b)
	if err != nil {
		return PublicKey{}, err
	}
	// Re-marshal so the stored form is canonical.
	return PublicKey{
		strength: s,
		bytes:    marshalPoint(s, x, y),
		std:      &ecdsa.PublicKey{Curve: s.Curve(), X: x, Y: y},
	}, nil
}

// Strength returns the key's security strength.
func (p PublicKey) Strength() Strength { return p.strength }

// Bytes returns the X‖Y encoding (2×CoordinateSize bytes).
func (p PublicKey) Bytes() []byte { return append([]byte(nil), p.bytes...) }

// IsZero reports whether p is the zero value (no key).
func (p PublicKey) IsZero() bool { return len(p.bytes) == 0 }

// Equal reports whether two public keys are identical.
func (p PublicKey) Equal(q PublicKey) bool {
	if p.strength != q.strength || len(p.bytes) != len(q.bytes) {
		return false
	}
	for i := range p.bytes {
		if p.bytes[i] != q.bytes[i] {
			return false
		}
	}
	return true
}

// Std returns the ecdsa.PublicKey form (the cached parse when available).
func (p PublicKey) Std() (*ecdsa.PublicKey, error) {
	if p.std != nil {
		return p.std, nil
	}
	x, y, err := unmarshalPoint(p.strength, p.bytes)
	if err != nil {
		return nil, err
	}
	return &ecdsa.PublicKey{Curve: p.strength.Curve(), X: x, Y: y}, nil
}

// Verify checks a fixed-width r‖s signature over SHA-256(msg).
func (p PublicKey) Verify(msg, sig []byte) bool {
	if len(sig) != p.strength.SignatureSize() {
		return false
	}
	pub, err := p.Std()
	if err != nil {
		return false
	}
	cs := p.strength.CoordinateSize()
	r := new(big.Int).SetBytes(sig[:cs])
	s := new(big.Int).SetBytes(sig[cs:])
	digest := sha256.Sum256(msg)
	return ecdsa.Verify(pub, digest[:], r, s)
}

func marshalPoint(s Strength, x, y *big.Int) []byte {
	cs := s.CoordinateSize()
	out := make([]byte, 2*cs)
	x.FillBytes(out[:cs])
	y.FillBytes(out[cs:])
	return out
}

func unmarshalPoint(s Strength, b []byte) (x, y *big.Int, err error) {
	cs := s.CoordinateSize()
	if len(b) != 2*cs {
		return nil, nil, errors.New("suite: wrong point length")
	}
	x = new(big.Int).SetBytes(b[:cs])
	y = new(big.Int).SetBytes(b[cs:])
	if !s.Curve().IsOnCurve(x, y) {
		return nil, nil, errors.New("suite: point not on curve")
	}
	return x, y, nil
}
