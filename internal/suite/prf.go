package suite

import (
	"crypto/hmac"
	"crypto/sha256"
)

// The ASCII labels bound into the key schedule and finished MACs, exactly as
// named in §V of the paper.
const (
	LabelSessionKey      = "session key"
	LabelSubjectFinished = "subject finished"
	LabelObjectFinished  = "object finished"
)

// PRF is the HMAC-based pseudorandom function HMAC(secret, seed) used
// throughout the key schedule (§V). The output is truncated or expanded to
// size bytes using an HKDF-expand-style counter construction; for the
// standard 32-byte outputs a single HMAC-SHA-256 invocation suffices.
func PRF(secret, seed []byte, size int) []byte {
	out := make([]byte, 0, size)
	var block []byte
	ctr := byte(1)
	for len(out) < size {
		m := hmac.New(sha256.New, secret)
		m.Write(block)
		m.Write(seed)
		m.Write([]byte{ctr})
		block = m.Sum(nil)
		out = append(out, block...)
		ctr++
	}
	return out[:size]
}

// SessionKey2 derives Level 2's session key
//
//	K2 = HMAC(preK, "session key" ‖ R_S ‖ R_O)
//
// from the ECDH premaster secret and the two nonces (§V).
func SessionKey2(preK, rs, ro []byte) []byte {
	seed := make([]byte, 0, len(LabelSessionKey)+len(rs)+len(ro))
	seed = append(seed, LabelSessionKey...)
	seed = append(seed, rs...)
	seed = append(seed, ro...)
	return PRF(preK, seed, KeySize)
}

// SessionKey3 derives Level 3's session key
//
//	K3 = HMAC(K2 ‖ K_i^grp, "session key" ‖ R_S ‖ R_O)
//
// for secret group i (§VI-A). Only a fellow holding the same group key can
// derive the same K3.
func SessionKey3(k2, groupKey, rs, ro []byte) []byte {
	secret := make([]byte, 0, len(k2)+len(groupKey))
	secret = append(secret, k2...)
	secret = append(secret, groupKey...)
	seed := make([]byte, 0, len(LabelSessionKey)+len(rs)+len(ro))
	seed = append(seed, LabelSessionKey...)
	seed = append(seed, rs...)
	seed = append(seed, ro...)
	return PRF(secret, seed, KeySize)
}

// FinishedMAC computes a finished MAC
//
//	MAC_{X,l} = HMAC(K_l, label ‖ SHA-256(transcript))
//
// where label is LabelSubjectFinished or LabelObjectFinished and transcript
// is "*": all the content sent and received so far (§V).
func FinishedMAC(sessionKey []byte, label string, transcriptHash [sha256.Size]byte) []byte {
	m := hmac.New(sha256.New, sessionKey)
	m.Write([]byte(label))
	m.Write(transcriptHash[:])
	return m.Sum(nil)
}

// VerifyMAC reports whether mac is the finished MAC for the given key, label
// and transcript hash, in constant time.
func VerifyMAC(sessionKey []byte, label string, transcriptHash [sha256.Size]byte, mac []byte) bool {
	want := FinishedMAC(sessionKey, label, transcriptHash)
	return hmac.Equal(want, mac)
}
