// Package suite provides the conventional-cryptography substrate Argus is
// built on: ECDSA signatures, ephemeral ECDH key exchange, the HMAC-based
// pseudorandom function used for the session-key schedule, and the
// AES-CBC + HMAC profile cipher.
//
// The paper (§IX-B) evaluates Argus at four security strengths; this package
// maps each strength to the matching NIST curve and key sizes:
//
//	112-bit → P-224
//	128-bit → P-256 (the paper's default)
//	192-bit → P-384
//	256-bit → P-521
//
// All wire encodings are fixed width per strength so that message sizes are
// deterministic; at the 128-bit strength they reproduce the sizes reported in
// §IX-A of the paper (64 B signatures, 64 B key-exchange material, 28 B
// nonces, 32 B HMACs).
package suite

import (
	"crypto/elliptic"
	"fmt"
)

// Strength identifies a security strength in bits, following the paper's
// four evaluation points (Fig 6a).
type Strength int

// The four security strengths evaluated in the paper.
const (
	S112 Strength = 112
	S128 Strength = 128 // default throughout the paper's experiments
	S192 Strength = 192
	S256 Strength = 256
)

// Strengths lists all supported strengths in ascending order, as swept by the
// Fig 6(a) experiment.
var Strengths = []Strength{S112, S128, S192, S256}

// String implements fmt.Stringer.
func (s Strength) String() string { return fmt.Sprintf("%d-bit", int(s)) }

// Valid reports whether s is one of the supported strengths.
func (s Strength) Valid() bool {
	switch s {
	case S112, S128, S192, S256:
		return true
	}
	return false
}

// Curve returns the NIST curve providing strength s.
func (s Strength) Curve() elliptic.Curve {
	switch s {
	case S112:
		return elliptic.P224()
	case S128:
		return elliptic.P256()
	case S192:
		return elliptic.P384()
	case S256:
		return elliptic.P521()
	}
	panic(fmt.Sprintf("suite: invalid strength %d", int(s)))
}

// CoordinateSize returns the byte length of one field coordinate on the
// strength's curve. Points are encoded as X‖Y (2×CoordinateSize) and ECDSA
// signatures as r‖s (also 2×CoordinateSize).
func (s Strength) CoordinateSize() int {
	return (s.Curve().Params().BitSize + 7) / 8
}

// PointSize returns the byte length of an encoded curve point (X‖Y, no
// prefix). At 128-bit strength this is the paper's 64 B KEXM size.
func (s Strength) PointSize() int { return 2 * s.CoordinateSize() }

// SignatureSize returns the byte length of an encoded ECDSA signature
// (r‖s, fixed width). At 128-bit strength this is the paper's 64 B SIG size.
func (s Strength) SignatureSize() int { return 2 * s.CoordinateSize() }

// NonceSize is the byte length of the random values R_S and R_O carried by
// QUE1 and RES1 (28 B per §IX-A, as in TLS).
const NonceSize = 28

// MACSize is the byte length of every HMAC-SHA-256 output on the wire
// (MAC_{S,2}, MAC_{S,3}, MAC_{O,2}, MAC_{O,3}): 32 B per §IX-A.
const MACSize = 32

// KeySize is the byte length of derived symmetric keys (K2, K3) and of
// secret-group keys.
const KeySize = 32
