package suite

import (
	"crypto/sha256"
	"sync"
)

// Batched ECDSA verification. Two fleet-scale patterns make individual
// PublicKey.Verify calls wasteful:
//
//  1. Identical verifications: one signed artifact fans out to many
//     receivers in the same process (a churn notification delivered to γ−1
//     agents, a rebroadcast answer). Every receiver runs the same scalar
//     multiplications on the same inputs.
//  2. Key re-parsing: verifying against a key without a cached stdlib form
//     re-derives the curve point per call.
//
// BatchVerify handles one call with several items (dedup + early abort);
// VerifyMemo extends the dedup across calls and goroutines, which is what
// the update fan-out needs.

// VerifyItem is one (key, message, signature) tuple of a batch.
type VerifyItem struct {
	Key PublicKey
	Msg []byte
	Sig []byte
}

// BatchVerify reports whether every item in the batch verifies. Exact
// duplicates (same key bytes, message, signature) are verified once, and the
// batch aborts on the first failure, so callers should order items
// cheapest-reject-first when they can. An empty batch verifies trivially.
//
// Verification is semantically identical to calling Key.Verify(Msg, Sig) on
// every item — batching changes cost, never outcome.
func BatchVerify(items []VerifyItem) bool {
	switch len(items) {
	case 0:
		return true
	case 1:
		return items[0].Key.Verify(items[0].Msg, items[0].Sig)
	}
	seen := make(map[[32]byte]bool, len(items))
	for i := range items {
		it := &items[i]
		d := verifyDigest(it.Key, it.Msg, it.Sig)
		if seen[d] {
			continue
		}
		if !it.Key.Verify(it.Msg, it.Sig) {
			return false
		}
		seen[d] = true
	}
	return true
}

// verifyDigest keys a verification by its exact inputs. Length prefixes make
// the concatenation unambiguous.
func verifyDigest(key PublicKey, msg, sig []byte) [32]byte {
	h := sha256.New()
	var n [8]byte
	for _, part := range [][]byte{key.bytes, msg, sig} {
		n[0] = byte(len(part) >> 24)
		n[1] = byte(len(part) >> 16)
		n[2] = byte(len(part) >> 8)
		n[3] = byte(len(part))
		h.Write(n[:4])
		h.Write(part)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifyMemo is a bounded, concurrency-safe memo of successful signature
// verifications, shared by receivers that see the same signed artifacts.
// Only successes are remembered — sound because a signature that verified
// once over exact bytes verifies forever — so an attacker flooding garbage
// never poisons it and never gets a cheap reject timing oracle from it
// either: failures always pay full price.
//
// A nil *VerifyMemo is valid and verifies directly.
type VerifyMemo struct {
	mu  sync.Mutex
	m   map[[32]byte]struct{}
	cap int
}

// NewVerifyMemo returns a memo holding at most capacity successes
// (default 4096 when capacity <= 0). Eviction is wholesale: when full, the
// memo resets — entries are pure cache, and the artifacts it serves
// (update notifications) arrive in tight bursts where a reset between
// bursts costs one redundant verify per distinct artifact.
func NewVerifyMemo(capacity int) *VerifyMemo {
	if capacity <= 0 {
		capacity = 4096
	}
	return &VerifyMemo{m: make(map[[32]byte]struct{}, capacity), cap: capacity}
}

// Verify checks sig over msg under key, consulting the memo first.
func (vm *VerifyMemo) Verify(key PublicKey, msg, sig []byte) bool {
	if vm == nil {
		return key.Verify(msg, sig)
	}
	d := verifyDigest(key, msg, sig)
	vm.mu.Lock()
	_, hit := vm.m[d]
	vm.mu.Unlock()
	if hit {
		return true
	}
	if !BatchVerify([]VerifyItem{{Key: key, Msg: msg, Sig: sig}}) {
		return false
	}
	vm.mu.Lock()
	if len(vm.m) >= vm.cap {
		vm.m = make(map[[32]byte]struct{}, vm.cap)
	}
	vm.m[d] = struct{}{}
	vm.mu.Unlock()
	return true
}
