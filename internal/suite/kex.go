package suite

import (
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"io"
	"math/big"
)

// KeyExchange is one side of an ephemeral ECDH exchange. Argus fixes key
// exchange at ephemeral ECDH for forward secrecy (§V, §VII Case 1): a freshly
// generated key pair is used for every discovery session and discarded
// afterwards, so compromising a long-term signing key never exposes past
// session keys.
type KeyExchange struct {
	strength Strength
	d        []byte   // private scalar
	x, y     *big.Int // public point
}

// NewKeyExchange generates an ephemeral key pair at strength s using entropy
// from rng (crypto/rand.Reader if nil). The public value is the KEXM field of
// RES1/QUE2.
func NewKeyExchange(s Strength, rng io.Reader) (*KeyExchange, error) {
	if !s.Valid() {
		return nil, errors.New("suite: invalid strength")
	}
	if rng == nil {
		rng = rand.Reader
	}
	d, x, y, err := elliptic.GenerateKey(s.Curve(), rng)
	if err != nil {
		return nil, err
	}
	return &KeyExchange{strength: s, d: d, x: x, y: y}, nil
}

// Public returns the fixed-width X‖Y encoding of the ephemeral public value
// (the KEXM wire field: 64 B at 128-bit strength, per §IX-A).
func (k *KeyExchange) Public() []byte {
	return marshalPoint(k.strength, k.x, k.y)
}

// Shared computes the premaster secret preK from the peer's KEXM: the
// fixed-width x-coordinate of d·Q.
func (k *KeyExchange) Shared(peerKEXM []byte) ([]byte, error) {
	px, py, err := unmarshalPoint(k.strength, peerKEXM)
	if err != nil {
		return nil, err
	}
	sx, sy := k.strength.Curve().ScalarMult(px, py, k.d)
	if sx.Sign() == 0 && sy.Sign() == 0 {
		return nil, errors.New("suite: ECDH produced point at infinity")
	}
	out := make([]byte, k.strength.CoordinateSize())
	sx.FillBytes(out)
	return out, nil
}
