GO ?= go
FUZZTIME ?= 15s

# Comparing two revisions of the handshake fast path (BENCH_N.json trajectory):
#
#   go test -bench=Handshake -benchmem -count=10 -run=^$ . > old.txt
#   <apply change>
#   go test -bench=Handshake -benchmem -count=10 -run=^$ . > new.txt
#   benchstat old.txt new.txt        # if benchstat is installed; otherwise
#                                    # diff the BENCH_*.json files, which carry
#                                    # the same per-experiment wall times
#
# `make bench-json` regenerates BENCH_4.json from the fastpath and
# mesh-throughput experiments — commit it alongside any change that moves
# handshake, provisioning, or concurrent-discovery cost.

.PHONY: build test race vet verify cover cover-check fuzz chaos bench bench-obs bench-json bench-check load soak capacity ops-smoke backend-smoke capacity-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with real concurrency: the telemetry
# registry is hammered from many goroutines, cert's verification cache and
# batch issuance fan out across worker pools, backend provisioning does the
# same, and core's Results/PendingSessions are read cross-goroutine.
race:
	$(GO) test -race -short ./internal/fleetcoord
	$(GO) test -race ./internal/obs ./internal/core ./internal/netsim ./internal/cert ./internal/backend ./internal/transport ./internal/load ./internal/realtime ./internal/update ./internal/adversary ./internal/backendsvc ./internal/backendclient ./internal/wire ./internal/suite

vet:
	$(GO) vet ./...

# Per-package statement coverage (the human-readable view).
cover:
	$(GO) test -count=1 -cover ./...

# Coverage gate: fails if any package drops below its recorded floor in
# scripts/coverage_baseline.txt. Rebuild floors (measured - 2pt margin) with
# `scripts/check_coverage.sh update` after intentionally adding/removing
# tests.
cover-check:
	scripts/check_coverage.sh

# Full gate: everything CI and the verify skill run.
verify: build vet test race

# Wire-codec fuzzing (one target per invocation: go test allows a single
# -fuzz pattern at a time). FUZZTIME=2m make fuzz for a longer campaign.
fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeQUE2$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeRES2$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/backend -run='^$$' -fuzz='^FuzzRestore$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/realtime -run='^$$' -fuzz='^FuzzTailDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/backendsvc -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/obs -run='^$$' -fuzz='^FuzzMergeSnapshots$$' -fuzztime=$(FUZZTIME)

# Property/chaos harness: seeds × loss rates × levels, crash windows, Case 7
# under retransmission (internal/chaos).
# Live ops-plane smoke: argus-load serves /events while the ci-soak profile
# runs and argus-ops tails it with the same SLO gates (scripts/ops_smoke.sh).
ops-smoke:
	scripts/ops_smoke.sh

# Backend-service smoke: a real argus-backend daemon serves /v1, argus-node
# processes source credentials from it over HTTP, then a SIGKILL + restart
# proves WAL replay end to end (scripts/backend_smoke.sh).
backend-smoke:
	scripts/backend_smoke.sh

# Capacity-search smoke: a 2-process sharded fleet under a coarse
# `argus-load -capacity -procs 2` search — the coordinator/shard/merge
# pipeline end to end (scripts/capacity_smoke.sh, ~1 min).
capacity-smoke:
	scripts/capacity_smoke.sh

chaos:
	$(GO) test ./internal/chaos -count=1 -v

# Paper tables/figures benchmarks (bench_test.go at the repo root).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Telemetry fast-path microbenchmarks (<50 ns/observe target).
bench-obs:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

# Machine-readable benchmark trajectory: handshake fast path, provisioning,
# and wall-clock Mesh discovery throughput (see EXPERIMENTS.md), plus the
# 10k-subject load/soak headline run (BENCH_5.json, ~2 min). BENCH_9.json is
# the hot-path rebuild's before/after record: its `after.report` is an
# `argus-load -profile standard` run and its microbenchmark figures come
# from the bench-check suite below — refresh both together when the hot
# path moves.
bench-json:
	$(GO) run ./cmd/argus-bench -exp fastpath-handshake,fastpath-provision,mesh-throughput -json > BENCH_4.json
	$(GO) run ./cmd/argus-load -profile standard -out BENCH_5.json
	$(GO) run ./cmd/argus-load -service-churn -out BENCH_8.json

# Hot-path allocation gate: wire codec + warm-handshake microbenchmarks
# against the committed allocs/op ceilings (scripts/check_bench.sh, ~10 s).
# Throughput/retransmission ceilings are gated at runtime by the load
# profiles' SLO blocks.
bench-check:
	scripts/check_bench.sh

# Load/soak harness (cmd/argus-load). `load` is the deterministic CI-sized
# soak; `soak` is the 10k-subject headline profile.
load:
	$(GO) run ./cmd/argus-load -profile ci-soak

soak:
	$(GO) run ./cmd/argus-load -profile standard

# Capacity knee search (BENCH_10.json): bracket-and-bisect search over the
# open-loop arrival rate on a widened ci-soak topology (192 subjects so the
# knee is compute-bound, not subject-bound), single process first, then the
# same fleet sharded across two argus-node processes with merged verdicts.
# A few minutes of wall time; regenerates the committed BENCH_10.json.
capacity:
	$(GO) build -o /tmp/argus-cap-node ./cmd/argus-node
	$(GO) run ./cmd/argus-load -capacity -profile ci-soak -subjects 16 -cap-duration 3s -out /tmp/argus-cap-single.json
	$(GO) run ./cmd/argus-load -capacity -procs 2 -node-bin /tmp/argus-cap-node -profile ci-soak -subjects 16 -cap-duration 3s -out /tmp/argus-cap-procs2.json
	{ printf '{\n"single_process": '; cat /tmp/argus-cap-single.json; printf ',\n"two_process": '; cat /tmp/argus-cap-procs2.json; printf '}\n'; } > BENCH_10.json

clean:
	$(GO) clean ./...
