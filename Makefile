GO ?= go

.PHONY: build test race vet bench bench-obs clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with real concurrency: the telemetry
# registry is hammered from many goroutines, and core/netsim drive it from
# the simulation loop.
race:
	$(GO) test -race ./internal/obs ./internal/core ./internal/netsim

vet:
	$(GO) vet ./...

# Paper tables/figures benchmarks (bench_test.go at the repo root).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Telemetry fast-path microbenchmarks (<50 ns/observe target).
bench-obs:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

clean:
	$(GO) clean ./...
