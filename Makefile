GO ?= go
FUZZTIME ?= 15s

# Comparing two revisions of the handshake fast path (BENCH_N.json trajectory):
#
#   go test -bench=Handshake -benchmem -count=10 -run=^$ . > old.txt
#   <apply change>
#   go test -bench=Handshake -benchmem -count=10 -run=^$ . > new.txt
#   benchstat old.txt new.txt        # if benchstat is installed; otherwise
#                                    # diff the BENCH_*.json files, which carry
#                                    # the same per-experiment wall times
#
# `make bench-json` regenerates BENCH_4.json from the fastpath and
# mesh-throughput experiments — commit it alongside any change that moves
# handshake, provisioning, or concurrent-discovery cost.

.PHONY: build test race vet verify fuzz chaos bench bench-obs bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with real concurrency: the telemetry
# registry is hammered from many goroutines, cert's verification cache and
# batch issuance fan out across worker pools, backend provisioning does the
# same, and core's Results/PendingSessions are read cross-goroutine.
race:
	$(GO) test -race ./internal/obs ./internal/core ./internal/netsim ./internal/cert ./internal/backend ./internal/transport

vet:
	$(GO) vet ./...

# Full gate: everything CI and the verify skill run.
verify: build vet test race

# Wire-codec fuzzing (one target per invocation: go test allows a single
# -fuzz pattern at a time). FUZZTIME=2m make fuzz for a longer campaign.
fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeQUE2$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeRES2$$' -fuzztime=$(FUZZTIME)

# Property/chaos harness: seeds × loss rates × levels, crash windows, Case 7
# under retransmission (internal/chaos).
chaos:
	$(GO) test ./internal/chaos -count=1 -v

# Paper tables/figures benchmarks (bench_test.go at the repo root).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Telemetry fast-path microbenchmarks (<50 ns/observe target).
bench-obs:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

# Machine-readable benchmark trajectory: handshake fast path, provisioning,
# and wall-clock Mesh discovery throughput (see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/argus-bench -exp fastpath-handshake,fastpath-provision,mesh-throughput -json > BENCH_4.json

clean:
	$(GO) clean ./...
