GO ?= go
FUZZTIME ?= 15s

.PHONY: build test race vet verify fuzz chaos bench bench-obs clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the packages with real concurrency: the telemetry
# registry is hammered from many goroutines, and core/netsim drive it from
# the simulation loop.
race:
	$(GO) test -race ./internal/obs ./internal/core ./internal/netsim

vet:
	$(GO) vet ./...

# Full gate: everything CI and the verify skill run.
verify: build vet test race

# Wire-codec fuzzing (one target per invocation: go test allows a single
# -fuzz pattern at a time). FUZZTIME=2m make fuzz for a longer campaign.
fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeQUE2$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecodeRES2$$' -fuzztime=$(FUZZTIME)

# Property/chaos harness: seeds × loss rates × levels, crash windows, Case 7
# under retransmission (internal/chaos).
chaos:
	$(GO) test ./internal/chaos -count=1 -v

# Paper tables/figures benchmarks (bench_test.go at the repo root).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Telemetry fast-path microbenchmarks (<50 ns/observe target).
bench-obs:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

clean:
	$(GO) clean ./...
