package argus

import "testing"

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// shows: backend → policy → registration → network → discovery.
func TestFacadeEndToEnd(t *testing.T) {
	b, err := NewBackend(Strength128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(
		MustPredicate("position=='staff'"),
		MustPredicate("type=='printer'"),
		[]string{"print"}); err != nil {
		t.Fatal(err)
	}
	alice, rep, err := b.RegisterSubject("alice", MustAttrs("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("add-subject overhead = %d", rep.Total())
	}
	printer, _, err := b.RegisterObject("printer", L2, MustAttrs("type=printer"), []string{"print", "admin"})
	if err != nil {
		t.Fatal(err)
	}

	net := NewNetwork(DefaultWiFi(), 1)
	subject, node, err := AttachSubject(b, net, alice, V30, Costs{})
	if err != nil {
		t.Fatal(err)
	}
	obj, pnode, err := AttachObject(b, net, printer, V30, Costs{})
	if err != nil {
		t.Fatal(err)
	}
	net.Link(node, pnode)

	if err := subject.Discover(1); err != nil {
		t.Fatal(err)
	}
	net.Run(0)

	res := subject.Results()
	if len(res) != 1 || res[0].Level != L2 {
		t.Fatalf("results = %+v", res)
	}
	if got := res[0].Profile.Functions; len(got) != 1 || got[0] != "print" {
		t.Fatalf("functions = %v, want the policy rights only", got)
	}

	// Churn through the facade: revoke, refresh, rediscover.
	if _, err := b.RevokeSubject(alice); err != nil {
		t.Fatal(err)
	}
	if err := RefreshObject(b, obj); err != nil {
		t.Fatal(err)
	}
	before := len(subject.Results())
	subject.Discover(1)
	net.Run(0)
	if got := len(subject.Results()) - before; got != 0 {
		t.Fatalf("revoked subject discovered %d services", got)
	}
}

func TestFacadeParsers(t *testing.T) {
	if _, err := ParsePredicate("a=='1' &&"); err == nil {
		t.Error("bad predicate accepted")
	}
	if _, err := ParseAttrs("===,,"); err == nil {
		t.Error("bad attrs accepted")
	}
	p, err := ParsePredicate("a=='1'")
	if err != nil || !p.Eval(MustAttrs("a=1")) {
		t.Error("predicate parsing broken")
	}
}

func TestFacadeRefreshSubject(t *testing.T) {
	b, _ := NewBackend(Strength128)
	g, _ := b.Groups.CreateGroup("grp")
	id, _, _ := b.RegisterSubject("s", MustAttrs("position=staff"))
	other, _, _ := b.RegisterSubject("o", MustAttrs("position=staff"))
	b.AddSubjectToGroup(id, g.ID())
	b.AddSubjectToGroup(other, g.ID())

	net := NewNetwork(DefaultWiFi(), 1)
	s, _, err := AttachSubject(b, net, id, V30, Costs{})
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the group (other member leaves), then refresh.
	if _, err := b.Groups.RemoveMember(g.ID(), other); err != nil {
		t.Fatal(err)
	}
	if err := RefreshSubject(b, s); err != nil {
		t.Fatal(err)
	}
	if s.GroupCount() != 1 {
		t.Fatalf("group count = %d", s.GroupCount())
	}
}

func TestFacadeSnapshotRestore(t *testing.T) {
	b, _ := NewBackend(Strength128)
	id, _, _ := b.RegisterSubject("alice", MustAttrs("position=staff"))
	blob := SnapshotBackend(b)
	r, err := RestoreBackend(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ProvisionSubject(id); err != nil {
		t.Fatalf("restored backend cannot provision: %v", err)
	}
}

// TestFacadeOptions threads engine options through AttachSubject and
// AttachObject: a shared verification cache plus telemetry. The second
// discovery round hits only warm credentials — the facade-level view of the
// handshake fast path.
func TestFacadeOptions(t *testing.T) {
	b, err := NewBackend(Strength128)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddPolicy(
		MustPredicate("position=='staff'"),
		MustPredicate("type=='printer'"),
		[]string{"print"}); err != nil {
		t.Fatal(err)
	}
	alice, _, err := b.RegisterSubject("alice", MustAttrs("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	printer, _, err := b.RegisterObject("printer", L2, MustAttrs("type=printer"), []string{"print"})
	if err != nil {
		t.Fatal(err)
	}

	vc := NewVerifyCache(0)
	reg := NewRegistry()
	net := NewNetwork(DefaultWiFi(), 1)
	opts := []Option{WithVerifyCache(vc), WithTelemetry(reg, NewTracer()), WithRetry(DefaultRetry())}
	subject, node, err := AttachSubject(b, net, alice, V30, Costs{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	_, pnode, err := AttachObject(b, net, printer, V30, Costs{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	net.Link(node, pnode)

	for round := 0; round < 2; round++ {
		if err := subject.Discover(1); err != nil {
			t.Fatal(err)
		}
		net.Run(0)
	}
	if res := subject.Results(); len(res) != 2 {
		t.Fatalf("results = %+v, want one per round", res)
	}
	hits, misses, _ := vc.Stats()
	if misses != 4 || hits != 4 {
		t.Fatalf("cache stats hits=%d misses=%d, want the warm round fully served (4/4)", hits, misses)
	}
}
