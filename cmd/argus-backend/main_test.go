package main

// End-to-end durability: a real argus-backend process serving /v1 over TCP,
// churned through internal/backendclient, killed without warning (SIGKILL —
// no compaction, no graceful drain), restarted on the same -data directory.
// The replayed state must fingerprint byte-identically and keep serving.
// The test re-executes its own binary as the daemon (ARGUS_BACKEND_CHILD).

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendclient"
	"argus/internal/suite"
)

func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_BACKEND_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func child(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ARGUS_BACKEND_CHILD=1")
	return cmd
}

// startDaemon launches the daemon and scans stdout until the API address
// (and, when -init-demo is among args, the demo auth key) is announced.
func startDaemon(t *testing.T, args ...string) (cmd *exec.Cmd, addr, demoKey string) {
	t.Helper()
	cmd = child(args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	wantDemo := false
	for _, a := range args {
		if a == "-init-demo" {
			wantDemo = true
		}
	}
	sc := bufio.NewScanner(stdout)
	for (addr == "" || (wantDemo && demoKey == "")) && sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "listening addr=") {
			addr = strings.TrimPrefix(line, "listening addr=")
		}
		if strings.HasPrefix(line, "tenant name=demo auth-key=") {
			demoKey = strings.TrimPrefix(line, "tenant name=demo auth-key=")
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return cmd, addr, demoKey
}

func TestE2ECrashMidChurnReplaysFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	ctx := context.Background()

	daemon, addr, demoKey := startDaemon(t,
		"-listen", "127.0.0.1:0", "-data", dir, "-admin-key", "root", "-init-demo")
	base := "http://" + addr

	// Tenant administration and churn happen over the versioned API only.
	admin := backendclient.NewAdmin(base, "root")
	acmeKey, err := admin.CreateTenant(ctx, "acme", suite.S128, 2)
	if err != nil {
		t.Fatal(err)
	}
	acme := backendclient.New(base, "acme", acmeKey)
	var svc backend.Service = acme
	ids := []string{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("sensor-%d", i)
		if _, _, err := svc.RegisterObject(ctx, name, backend.L2,
			attr.MustSet("type=sensor"), []string{"read"}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, name)
	}
	sid, _, err := svc.RegisterSubject(ctx, "carol", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"),
		attr.MustParse("type=='sensor'"), []string{"read"}); err != nil {
		t.Fatal(err)
	}
	gid, err := svc.CreateGroup(ctx, "ops")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, sid, gid); err != nil {
		t.Fatal(err)
	}
	fpBefore, err := svc.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	demoFP, err := backendclient.New(base, "demo", demoKey).StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(base + "/metrics"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %v %v", resp, err)
	}

	// Crash mid-churn: SIGKILL leaves the WAL un-compacted; durability now
	// rests entirely on the fsynced effect records.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	_, addr2, _ := startDaemon(t, "-listen", "127.0.0.1:0", "-data", dir, "-admin-key", "root")
	base2 := "http://" + addr2
	acme2 := backendclient.New(base2, "acme", acmeKey)
	fpAfter, err := acme2.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fpAfter != fpBefore {
		t.Fatalf("replayed fingerprint differs:\n got %s\nwant %s", fpAfter, fpBefore)
	}
	// The other tenant replayed independently, auth keys intact.
	demo2 := backendclient.New(base2, "demo", demoKey)
	if fp, err := demo2.StateFingerprint(ctx); err != nil || fp != demoFP {
		t.Fatalf("demo tenant after restart: fp %s err %v, want %s", fp, err, demoFP)
	}
	// The replayed service keeps working: provisioning verifies, churn goes on.
	sp, err := acme2.ProvisionSubject(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Memberships) != 1 {
		t.Fatalf("replayed subject lost group membership: %+v", sp)
	}
	if _, _, err := acme2.RegisterObject(ctx, "sensor-post-crash", backend.L2,
		attr.MustSet("type=sensor"), nil); err != nil {
		t.Fatalf("churn after replay: %v", err)
	}
	if fp2, _ := acme2.StateFingerprint(ctx); fp2 == fpBefore {
		t.Fatal("post-crash churn did not change the fingerprint")
	}
	_ = ids
}
