// Command argus-backend hosts the enterprise backend as a long-running
// service: a sharded, multi-tenant store behind the versioned /v1 HTTP API
// (internal/backendsvc). Each tenant is one enterprise — its own trust
// anchor, policy set and secret groups — durably persisted through a
// write-ahead log with snapshot compaction, so a crash mid-churn replays to
// the exact pre-crash state on restart.
//
// Usage:
//
//	argus-backend -listen 127.0.0.1:8420 -data ./argus-data -init-demo
//
// The daemon prints one "listening addr=<host:port>" line once the API is
// up. -init-demo provisions the same demo enterprise argus-node -init
// writes to a snapshot file — subject alice, one object per visibility
// level, the kiosk's covert service — inside a tenant named "demo", and
// prints the tenant's auth key ("tenant name=demo auth-key=<key>") so
// argus-node processes can source their credentials over HTTP:
//
//	argus-node -role object -names kiosk -backend http://127.0.0.1:8420 \
//	    -tenant demo -auth-key <key>
//
// Tenant administration (POST /v1/tenants) is guarded by -admin-key; when
// empty a random key is generated and printed. /metrics serves the obs
// registry (request counts and latency by route, WAL appends/replays,
// compactions, tenant gauge). SIGTERM/SIGINT shuts down gracefully: the
// listener drains, every tenant compacts its WAL into a fresh snapshot, and
// the process exits 0.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendsvc"
	"argus/internal/obs"
	"argus/internal/suite"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "HTTP listen address (\":0\" picks a port)")
		data     = flag.String("data", "argus-data", "state directory (per-tenant WAL and snapshot files)")
		adminKey = flag.String("admin-key", "", "key guarding tenant administration (empty generates one and prints it)")
		initDemo = flag.Bool("init-demo", false, "ensure the demo tenant exists and print its auth key")
		shards   = flag.Int("shards", 0, "worker shards per new tenant (0 = serial)")
		duration = flag.Duration("duration", 0, "serve this long then exit (0 = until SIGTERM)")
	)
	flag.Parse()
	if err := run(*listen, *data, *adminKey, *initDemo, *shards, *duration); err != nil {
		fmt.Fprintf(os.Stderr, "argus-backend: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, data, adminKey string, initDemo bool, shards int, duration time.Duration) error {
	reg := obs.NewRegistry()
	store, err := backendsvc.OpenStore(data, reg)
	if err != nil {
		return err
	}
	if adminKey == "" {
		raw := make([]byte, 24)
		if _, err := rand.Read(raw); err != nil {
			return err
		}
		adminKey = hex.EncodeToString(raw)
		fmt.Printf("admin-key %s\n", adminKey)
	}
	if initDemo {
		key, err := ensureDemoTenant(store, shards)
		if err != nil {
			return err
		}
		fmt.Printf("tenant name=demo auth-key=%s\n", key)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", backendsvc.NewServer(store, adminKey, reg).Handler())
	mux.Handle("/metrics", obs.Handler(reg))
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("listening addr=%s\n", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	if duration > 0 {
		select {
		case <-stop:
		case <-time.After(duration):
		}
	} else {
		<-stop
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		store.Close()
		return err
	}
	// Close compacts every tenant: restart replays from fresh snapshots.
	return store.Close()
}

// ensureDemoTenant creates (or reuses) the "demo" tenant holding the same
// enterprise argus-node -init writes to a snapshot file, so the quickstart
// and the smoke test work against either state source.
func ensureDemoTenant(store *backendsvc.Store, shards int) (authKey string, err error) {
	if tn, err := store.Tenant("demo"); err == nil {
		return tn.AuthKey(), nil // already provisioned on a previous run
	} else if !errors.Is(err, backendsvc.ErrNoTenant) {
		return "", err
	}
	tn, err := store.Create("demo", suite.S128, shards)
	if err != nil {
		return "", err
	}
	ctx := context.Background()
	var svc backend.Service = tn
	if _, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"}); err != nil {
		return "", err
	}
	sid, _, err := svc.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		return "", err
	}
	if _, _, err := svc.RegisterObject(ctx, "thermometer", backend.L1,
		attr.MustSet("type=thermometer"), []string{"read-temperature"}); err != nil {
		return "", err
	}
	if _, _, err := svc.RegisterObject(ctx, "printer", backend.L2,
		attr.MustSet("type=printer"), []string{"print"}); err != nil {
		return "", err
	}
	kid, _, err := svc.RegisterObject(ctx, "kiosk", backend.L3,
		attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		return "", err
	}
	gid, err := svc.CreateGroup(ctx, "fellows")
	if err != nil {
		return "", err
	}
	if err := svc.AddCovertService(ctx, kid, gid, []string{"use", "covert-bulletin"}); err != nil {
		return "", err
	}
	if err := svc.AddSubjectToGroup(ctx, sid, gid); err != nil {
		return "", err
	}
	return tn.AuthKey(), nil
}
