// Command argus-inspect prints the inventory of an argus-sim artifact:
// either a backend snapshot (argus-sim -save-state, backend.Snapshot) —
// registered subjects and objects, policies, secret groups and revocations —
// or a metrics snapshot (argus-sim -metrics, Prometheus text or JSON). Keys
// are never printed.
//
// Usage:
//
//	argus-inspect state.bin
//	argus-inspect -json state.bin
//	argus-inspect -json metrics.prom        # parsed back into structured JSON
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"argus/internal/backend"
	"argus/internal/obs"
)

func main() {
	jsonOut := false
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: argus-inspect [-json] <snapshot-file>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		fail(err)
	}

	if b, err := backend.Restore(blob); err == nil {
		inspectBackend(b, len(blob), jsonOut)
		return
	}
	if snap, err := obs.ParseSnapshot(blob); err == nil {
		inspectMetrics(snap, jsonOut)
		return
	}
	fail(fmt.Errorf("%s is neither a backend snapshot nor a metrics snapshot", args[0]))
}

// backendJSON is the -json projection of a backend snapshot (no key material).
type backendJSON struct {
	Bytes    int          `json:"bytes"`
	Strength string       `json:"strength"`
	Policies []policyJSON `json:"policies"`
	Objects  []objectJSON `json:"objects"`
	Groups   []groupJSON  `json:"groups"`
}

type policyJSON struct {
	ID      uint64   `json:"id"`
	Subject string   `json:"subject"`
	Object  string   `json:"object"`
	Rights  []string `json:"rights"`
}

type objectJSON struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	Level     string   `json:"level"`
	Attrs     string   `json:"attrs"`
	Functions []string `json:"functions"`
	Revoked   int      `json:"revoked,omitempty"`
}

type groupJSON struct {
	ID          uint64 `json:"id"`
	Description string `json:"description"`
	Size        int    `json:"size"`
	KeyVersion  uint64 `json:"key_version"`
}

func inspectBackend(b *backend.Backend, size int, jsonOut bool) {
	out := backendJSON{Bytes: size, Strength: fmt.Sprint(b.Strength())}
	for _, p := range b.Policies() {
		out.Policies = append(out.Policies, policyJSON{
			ID: p.ID, Subject: fmt.Sprint(p.Subject), Object: fmt.Sprint(p.Object), Rights: p.Rights,
		})
	}
	for _, oid := range b.Objects() {
		o, err := b.Object(oid)
		if err != nil {
			continue
		}
		revoked, _ := b.RevokedFor(oid)
		out.Objects = append(out.Objects, objectJSON{
			ID: o.ID.String(), Name: o.Name, Level: o.Level.String(),
			Attrs: fmt.Sprint(o.Attrs), Functions: o.Functions, Revoked: len(revoked),
		})
	}
	for _, gid := range b.Groups.Groups() {
		g, err := b.Groups.Get(gid)
		if err != nil {
			continue
		}
		out.Groups = append(out.Groups, groupJSON{
			ID: uint64(gid), Description: g.Description(), Size: g.Size(), KeyVersion: g.KeyVersion(),
		})
	}

	if jsonOut {
		emitJSON(out)
		return
	}
	fmt.Printf("backend snapshot: %d bytes, strength %v\n\n", out.Bytes, out.Strength)
	fmt.Println("policies:")
	for _, p := range out.Policies {
		fmt.Printf("  #%d  subject[%s]  object[%s]  rights%v\n", p.ID, p.Subject, p.Object, p.Rights)
	}
	fmt.Println("\nobjects:")
	for _, o := range out.Objects {
		fmt.Printf("  %-24s %-8s attrs[%s] functions%v", o.Name, o.Level, o.Attrs, o.Functions)
		if o.Revoked > 0 {
			fmt.Printf(" blacklist=%d", o.Revoked)
		}
		fmt.Println()
	}
	fmt.Println("\nsecret groups:")
	for _, g := range out.Groups {
		fmt.Printf("  #%d  %q  γ=%d  key-version=%d\n", g.ID, g.Description, g.Size, g.KeyVersion)
	}
}

func inspectMetrics(snap *obs.Snapshot, jsonOut bool) {
	if jsonOut {
		emitJSON(snap)
		return
	}
	fmt.Printf("metrics snapshot: %d series\n\n", len(snap.Metrics))
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		switch m.Type {
		case "histogram":
			fmt.Printf("  %-44s %s count=%d sum=%g p50=%g p95=%g p99=%g\n",
				m.Name+labelSuffix(m), m.Type, m.Count, m.Sum, m.P50, m.P95, m.P99)
		default:
			fmt.Printf("  %-44s %s %g\n", m.Name+labelSuffix(m), m.Type, m.Value)
		}
	}
}

func labelSuffix(m *obs.Metric) string {
	if len(m.Labels) == 0 {
		return ""
	}
	ls := make([]obs.Label, 0, len(m.Labels))
	for k, v := range m.Labels {
		ls = append(ls, obs.L(k, v))
	}
	return obs.LabelString(ls)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "argus-inspect:", err)
	os.Exit(1)
}
