// Command argus-inspect prints the inventory of a backend snapshot produced
// by argus-sim -state (or backend.Snapshot): registered subjects and objects,
// policies, secret groups and revocations. Keys are never printed.
//
// Usage:
//
//	argus-inspect state.bin
package main

import (
	"fmt"
	"os"

	"argus/internal/backend"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: argus-inspect <snapshot-file>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err)
	}
	b, err := backend.Restore(blob)
	if err != nil {
		fail(fmt.Errorf("not a valid backend snapshot: %w", err))
	}

	fmt.Printf("backend snapshot: %d bytes, strength %v\n\n", len(blob), b.Strength())

	fmt.Println("policies:")
	for _, p := range b.Policies() {
		fmt.Printf("  #%d  subject[%s]  object[%s]  rights%v\n", p.ID, p.Subject, p.Object, p.Rights)
	}

	fmt.Println("\nobjects:")
	for _, oid := range b.Objects() {
		o, err := b.Object(oid)
		if err != nil {
			continue
		}
		revoked, _ := b.RevokedFor(oid)
		fmt.Printf("  %-24s %-8s attrs[%s] functions%v", o.Name, o.Level, o.Attrs, o.Functions)
		if len(revoked) > 0 {
			fmt.Printf(" blacklist=%d", len(revoked))
		}
		fmt.Println()
	}

	fmt.Println("\nsecret groups:")
	for _, gid := range b.Groups.Groups() {
		g, err := b.Groups.Get(gid)
		if err != nil {
			continue
		}
		fmt.Printf("  #%d  %q  γ=%d  key-version=%d\n", gid, g.Description(), g.Size(), g.KeyVersion())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "argus-inspect:", err)
	os.Exit(1)
}
