package main

// The in-process tests drive run() directly against an httptest-hosted hub;
// the e2e smoke re-executes this test binary as argus-ops (the
// ARGUS_OPS_CHILD trampoline) so the flag surface and exit codes are what a
// CI shell actually sees.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"argus/internal/load"
	"argus/internal/obs"
	"argus/internal/realtime"
)

func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_OPS_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func child(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ARGUS_OPS_CHILD=1")
	return cmd
}

// opsFixture is a live obs plane with enough state to make every rendering
// path fire: load counters, a per-level latency histogram, a DLQ gauge and a
// pre-recorded span sitting in the hub's replay ring for late attachers.
func opsFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	hub := realtime.New(realtime.Config{Registry: reg, Tracer: tr, SnapshotEvery: 20 * time.Millisecond})
	t.Cleanup(hub.Close)

	reg.Counter(obs.MLoadCompletions, "").Add(40)
	reg.Counter(obs.MLoadLost, "").Add(2)
	reg.Counter(obs.MRetransmissions, "").Add(3)
	reg.Gauge(obs.MUpdateDLQDepth, "").Set(1)
	h := reg.Histogram(obs.MDiscoveryPhaseSeconds, "",
		[]float64{0.001, 0.005, 0.01, 0.1, 1},
		obs.L("level", "2"), obs.L("phase", obs.PhaseAll))
	for i := 0; i < 10; i++ {
		h.Observe(0.004)
	}
	tr.Record(obs.Span{Session: 7, Name: "discover", Phase: obs.PhaseAll, Level: 2,
		Start: 0, End: 4 * time.Millisecond})

	srv := httptest.NewServer(obs.NewMux(reg, tr, obs.WithStream(hub.StreamHandler())))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunAwaitRendersHealth: attaching with -await snapshot,span terminates
// as soon as both frame types arrive and the rendered health block carries
// the fixture's counters, latency quantiles and SLO gates.
func TestRunAwaitRendersHealth(t *testing.T) {
	srv := opsFixture(t)
	var buf bytes.Buffer
	o := options{
		attach:  strings.TrimPrefix(srv.URL, "http://"),
		slo:     load.SLO{MaxLost: 4, MaxDLQDepth: 0, MaxRetransmissions: -1},
		await:   []string{"snapshot", "span"},
		tailFor: 10 * time.Second,
		spans:   true,
	}
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	text := buf.String()
	for _, want := range []string{
		"attached seq=",
		"completed=40 lost=2 retransmissions=3",
		"dlq_depth=1",
		"L2 n=10",
		"span seq=", "session=7 discover/total L2",
		"gate lost", "used  50%", // 2 of the 4-lost budget
		"gate dlq_depth", "strict  VIOLATED",
		"SLO: 1 gate(s) VIOLATED",
		"awaited snapshot,span: all seen",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunFramesAndJSON: -frames bounds the tail and -json passes frames
// through as NDJSON.
func TestRunFramesAndJSON(t *testing.T) {
	srv := opsFixture(t)
	var buf bytes.Buffer
	o := options{attach: srv.URL, frames: 2, raw: true, tailFor: 10 * time.Second}
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"type":"hello"`) {
		t.Errorf("first frame is not the hello: %s", lines[0])
	}
}

// TestRunAwaitTimesOut: a deadline with unmet -await is an error naming the
// missing types.
func TestRunAwaitTimesOut(t *testing.T) {
	srv := opsFixture(t)
	var buf bytes.Buffer
	o := options{attach: srv.URL, await: []string{"never-published"}, tailFor: 100 * time.Millisecond}
	err := run(context.Background(), &buf, o)
	if err == nil || !strings.Contains(err.Error(), "never-published") {
		t.Fatalf("err = %v, want missing-await error", err)
	}
}

func TestEventsURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:9970":            "http://127.0.0.1:9970/events",
		"http://10.0.0.2:80":        "http://10.0.0.2:80/events",
		"http://10.0.0.2:80/":       "http://10.0.0.2:80/events",
		"http://10.0.0.2:80/events": "http://10.0.0.2:80/events",
	} {
		if got := eventsURL(in); got != want {
			t.Errorf("eventsURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestE2EAwaitSmoke: the real CLI (argv in, exit code out) attaches to a
// live stream and exits 0 once -await is satisfied — the same invocation the
// CI ops-smoke job runs against an argus-load -obs endpoint.
func TestE2EAwaitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	srv := opsFixture(t)
	out, err := child("-attach", srv.URL, "-profile", "ci-soak",
		"-await", "snapshot,span", "-for", "10s").CombinedOutput()
	if err != nil {
		t.Fatalf("argus-ops exited %v:\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "awaited snapshot,span: all seen") {
		t.Errorf("missing await confirmation:\n%s", text)
	}
	if !strings.Contains(text, "gate lost") {
		t.Errorf("missing profile SLO gates:\n%s", text)
	}
}
