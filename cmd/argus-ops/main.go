// Command argus-ops is the operator's tail onto a running Argus process.
// It attaches to the obs plane of an argus-node or argus-load run (-obs),
// follows the realtime event stream at /events, and renders fleet health
// from each snapshot frame: per-level discovery latency quantiles,
// retransmissions, mailbox drops, dead-letter depth and redeliveries —
// plus the SLO gates of a chosen load profile, evaluated live with
// budget-burn rates. The gates are the very definitions internal/load
// enforces at the end of a run (SLO.StreamGates over load.SnapshotReport),
// so the tail and the final report can never disagree about what green means.
//
// Usage:
//
//	argus-node -role subject ... -obs 127.0.0.1:9970 -linger 1h &
//	argus-ops -attach 127.0.0.1:9970 -profile ci-soak
//
// Stop conditions compose: -for bounds wall time, -frames bounds frame
// count, and -await lists event types (e.g. "snapshot,span") after which the
// tail exits 0 — the CI smoke uses -await to assert a live node is actually
// streaming. -json switches to raw NDJSON passthrough for piping into jq.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"argus/internal/load"
	"argus/internal/realtime"
)

type options struct {
	attach  string
	slo     load.SLO
	await   []string
	tailFor time.Duration
	frames  int
	raw     bool
	spans   bool
}

func main() {
	attach := flag.String("attach", "", "obs endpoint to tail: host:port or a full URL (required)")
	profile := flag.String("profile", "", "evaluate the SLO gates of this load profile (default: strict zero budgets)")
	await := flag.String("await", "", "comma-separated event types; exit 0 once every one has been seen")
	tailFor := flag.Duration("for", 0, "stop after this long (0 = until the stream ends)")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = unbounded)")
	raw := flag.Bool("json", false, "emit raw NDJSON frames instead of rendered text")
	spans := flag.Bool("spans", false, "render span frames (per-phase protocol timings)")
	flag.Parse()

	o := options{attach: *attach, tailFor: *tailFor, frames: *frames, raw: *raw, spans: *spans}
	if *profile != "" {
		p, ok := load.Profiles()[*profile]
		if !ok {
			fmt.Fprintf(os.Stderr, "argus-ops: unknown profile %q (try argus-load -list)\n", *profile)
			os.Exit(2)
		}
		o.slo = p.SLO
	}
	for _, t := range strings.Split(*await, ",") {
		if t = strings.TrimSpace(t); t != "" {
			o.await = append(o.await, t)
		}
	}
	if o.attach == "" {
		fmt.Fprintln(os.Stderr, "argus-ops: -attach is required")
		os.Exit(2)
	}
	if err := run(context.Background(), os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "argus-ops:", err)
		os.Exit(1)
	}
}

// eventsURL normalizes -attach (host:port, base URL, or full stream URL)
// into the /events stream URL.
func eventsURL(attach string) string {
	if !strings.Contains(attach, "://") {
		attach = "http://" + attach
	}
	if strings.HasSuffix(attach, "/events") {
		return attach
	}
	return strings.TrimRight(attach, "/") + "/events"
}

// run tails the stream until a stop condition fires. A -for deadline is a
// bounded tail, not a failure; a stream that ends before every -await type
// was seen is.
func run(ctx context.Context, w io.Writer, o options) error {
	url := eventsURL(o.attach)
	if o.tailFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.tailFor)
		defer cancel()
	}
	pending := make(map[string]bool, len(o.await))
	for _, t := range o.await {
		pending[t] = true
	}
	t := &tail{o: o, w: w, enc: json.NewEncoder(w)}
	frames := 0
	err := realtime.Tail(ctx, url, func(ev realtime.Event) error {
		frames++
		if err := t.render(ev); err != nil {
			return err
		}
		delete(pending, ev.Type)
		if len(o.await) > 0 && len(pending) == 0 {
			fmt.Fprintf(w, "awaited %s: all seen\n", strings.Join(o.await, ","))
			return realtime.Stop
		}
		if o.frames > 0 && frames >= o.frames {
			return realtime.Stop
		}
		return nil
	})
	if errors.Is(err, context.DeadlineExceeded) && o.tailFor > 0 {
		err = nil
	}
	if err != nil {
		return err
	}
	if len(pending) > 0 {
		missing := make([]string, 0, len(pending))
		for typ := range pending {
			missing = append(missing, typ)
		}
		sort.Strings(missing)
		return fmt.Errorf("stream ended before awaited events: %s", strings.Join(missing, ","))
	}
	return nil
}

// tail renders frames, carrying the previous snapshot-derived report so
// budgeted gates get a burn rate over the inter-frame window.
type tail struct {
	o   options
	w   io.Writer
	enc *json.Encoder

	prev   *load.Report
	prevAt time.Duration
}

func (t *tail) render(ev realtime.Event) error {
	if t.o.raw {
		return t.enc.Encode(ev)
	}
	switch ev.Type {
	case realtime.EventHello:
		fmt.Fprintf(t.w, "attached seq=%d config=%s\n", ev.Seq, ev.Data)
	case realtime.EventSnapshot:
		t.snapshot(ev)
	case realtime.EventSpan:
		if t.o.spans && ev.Span != nil {
			s := ev.Span
			fmt.Fprintf(t.w, "span seq=%d session=%d %s/%s L%d dur=%s\n",
				ev.Seq, s.Session, s.Name, s.Phase, s.Level, s.Duration())
		}
	default: // free-form kinds: wave, churn, report, gates, ...
		fmt.Fprintf(t.w, "event kind=%s seq=%d %s\n", ev.Type, ev.Seq, ev.Data)
	}
	return nil
}

// snapshot renders one fleet-health block: headline counters, per-level
// latency quantiles, redelivery lag, then every SLO gate with its budget
// burn since the previous frame.
func (t *tail) snapshot(ev realtime.Event) {
	rep := load.SnapshotReport(ev.Snapshot)
	fmt.Fprintf(t.w,
		"snapshot seq=%d completed=%d lost=%d retransmissions=%d mailbox_drops=%d dlq_depth=%d redelivered=%d\n",
		ev.Seq, rep.Totals.Completed, rep.Totals.Lost,
		rep.Counters["retransmissions"], rep.Counters["mailbox_drops"],
		rep.Counters["dlq_depth"], rep.Counters["update_redelivered"])

	levels := make([]string, 0, len(rep.Latency))
	for lvl := range rep.Latency {
		levels = append(levels, lvl)
	}
	sort.Strings(levels)
	for _, lvl := range levels {
		q := rep.Latency[lvl]
		fmt.Fprintf(t.w, "  L%s n=%d p50=%s p95=%s p99=%s overflow=%d\n",
			lvl, q.Count, fmtSec(q.P50), fmtSec(q.P95), fmtSec(q.P99), q.Overflow)
	}
	if q := rep.RedeliveryLag; q != nil {
		fmt.Fprintf(t.w, "  redelivery_lag n=%d p50=%s p99=%s\n",
			q.Count, fmtSec(q.P50), fmtSec(q.P99))
	}
	// The observer publishes -1 while its verdict is pending; show the line
	// once either channel has a real p-value.
	if tp, lp := rep.Counters["covert_timing_p_ppm"], rep.Counters["covert_length_p_ppm"]; tp >= 0 || lp >= 0 {
		fmt.Fprintf(t.w, "  covertness samples=%d timing_p=%.6f length_p=%.6f\n",
			rep.Counters["observer_samples"], float64(tp)/1e6, float64(lp)/1e6)
	}

	var dt time.Duration
	if t.prev != nil && ev.At > t.prevAt {
		dt = ev.At - t.prevAt
	}
	violated := 0
	for _, g := range t.o.slo.StreamGates(rep, t.prev, dt) {
		fmt.Fprintf(t.w, "  gate %s\n", g)
		if g.Violated {
			violated++
		}
	}
	if violated > 0 {
		fmt.Fprintf(t.w, "  SLO: %d gate(s) VIOLATED\n", violated)
	}
	t.prev, t.prevAt = rep, ev.At
}

// fmtSec renders a seconds-valued quantile as a rounded duration.
func fmtSec(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}
