// Command argus-sim runs a simulated Argus enterprise deployment end to end:
// a backend, a ground network of mixed-level objects, and one subject device
// performing concurrent three-level discovery — the simulation analogue of
// the paper's 1-phone + 20-Pi testbed (§IX).
//
// Usage:
//
//	argus-sim                       # 20 mixed objects, v3.0, single hop
//	argus-sim -objects 12 -mix 1,3  # 12 objects alternating L1/L3
//	argus-sim -multihop -ttl 4      # paper's 4-ring multi-hop layout
//	argus-sim -version 2            # run the older, distinguishable protocol
//	argus-sim -churn                # revoke the subject mid-run and retry
//	argus-sim -loss 0.2             # 20% frame loss; retransmission kicks in
//	argus-sim -loss 0.2 -fault-seed 7  # same loss pattern on every run
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/exp"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/wire"
)

func main() {
	var (
		objects  = flag.Int("objects", 20, "number of objects")
		mix      = flag.String("mix", "1,2,3", "comma-separated level cycle for objects")
		version  = flag.Int("version", 3, "protocol version: 1, 2 or 3")
		multihop = flag.Bool("multihop", false, "place objects in rings of 5 at hops 1-4")
		ttl      = flag.Int("ttl", 1, "broadcast TTL (hops)")
		fellow   = flag.Bool("fellow", true, "subject belongs to the covert secret group")
		churn    = flag.Bool("churn", false, "revoke the subject after the first round and rediscover")
		seed     = flag.Int64("seed", 1, "simulator RNG seed")
		state    = flag.String("save-state", "", "write the backend snapshot to this file on exit (inspect with argus-inspect)")
		trace    = flag.Bool("trace", false, "print every radio message (type, size, time) as it is delivered")
		metrics  = flag.String("metrics", "", "write a metrics snapshot to this file on exit (.json = JSON, otherwise Prometheus text)")
		traceOut = flag.String("trace-out", "", "write the discovery-session spans (virtual-clock JSON) to this file on exit")
		httpAddr = flag.String("http", "", "after the run, serve /metrics, /trace.json, /debug/vars and /debug/pprof on this address")

		loss      = flag.Float64("loss", 0, "per-frame loss probability on every link (0..1)")
		corrupt   = flag.Float64("corrupt", 0, "per-frame corruption probability (bytes flipped in flight)")
		duplicate = flag.Float64("duplicate", 0, "per-frame duplication probability")
		reorder   = flag.Duration("reorder", 0, "max extra per-frame jitter (reorders deliveries), e.g. 20ms")
		faultSeed = flag.Int64("fault-seed", 0, "fault RNG seed (0: derived from -seed)")
	)
	flag.Parse()

	levels, err := parseMix(*mix, *objects)
	if err != nil {
		fail(err)
	}
	var ver wire.Version
	switch *version {
	case 1:
		ver = wire.V10
	case 2:
		ver = wire.V20
	case 3:
		ver = wire.V30
	default:
		fail(fmt.Errorf("unknown version %d", *version))
	}

	cfg := exp.DeployConfig{
		Levels:       levels,
		Version:      ver,
		SubjectCosts: exp.PhoneCosts(),
		ObjectCosts:  exp.PiCosts(),
		Fellow:       *fellow,
		Seed:         *seed,
		FaultSeed:    *faultSeed,
		Faults: netsim.FaultModel{
			Loss:          *loss,
			Corrupt:       *corrupt,
			Duplicate:     *duplicate,
			ReorderJitter: *reorder,
		},
	}
	// Any active fault makes the one-shot protocol unreliable, so fault runs
	// get the chaos-calibrated retransmission policy; clean runs keep the
	// seed's exact one-shot behavior.
	if cfg.Faults.Active() {
		cfg.Retry = core.DefaultRetry()
	}
	// Telemetry is opt-in: with none of the flags set the run executes with
	// nil handles everywhere and produces byte-identical output.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics != "" || *httpAddr != "" {
		reg = obs.NewRegistry()
		cfg.Registry = reg
	}
	if *traceOut != "" || *httpAddr != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	if *multihop {
		hops := make([]int, *objects)
		for i := range hops {
			hops[i] = 1 + i/5
		}
		cfg.HopOf = hops
		if *ttl < 4 {
			*ttl = 4
		}
	}

	d, err := exp.Deploy(cfg)
	if err != nil {
		fail(err)
	}
	if *trace {
		d.Net.Snoop(func(from, to netsim.NodeID, payload []byte) {
			kind := "?"
			if m, err := wire.Decode(payload); err == nil {
				kind = m.Type().String()
			}
			fmt.Printf("  %-9v %-5s %4d B  node %d → %d\n",
				d.Net.Now().Round(time.Millisecond), kind, len(payload), from, to)
		})
	}
	counts := map[backend.Level]int{}
	for _, l := range levels {
		counts[l]++
	}
	fmt.Printf("deployment: %d objects (L1 %d, L2 %d, L3 %d), protocol %v, fellow=%v\n",
		*objects, counts[backend.L1], counts[backend.L2], counts[backend.L3], ver, *fellow)
	if *trace {
		fmt.Println("--- radio trace ---")
	}

	results, err := d.Run(*ttl)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nround 1: discovered %d/%d services\n", len(results), *objects)
	fmt.Printf("%-12s %-8s %-5s %-10s %s\n", "object", "level", "hops", "at", "functions")
	for _, r := range results {
		hops := -1
		if node, ok := netsim.NodeOf(r.Node); ok {
			hops = d.Net.HopDistance(d.SubjNode, node)
		}
		fmt.Printf("%-12s %-8s %-5d %-10v %v\n",
			shortID(r.Object.String()), r.Level, hops,
			r.At.Round(1e6), r.Profile.Functions)
	}
	st := d.Net.Stats()
	fmt.Printf("\nnetwork: %d transmissions, %d B on air, medium busy %v\n",
		st.Transmissions, st.BytesOnAir, st.MediumBusy.Round(1e6))
	if cfg.Faults.Active() {
		fmt.Printf("faults: %d lost, %d corrupted, %d duplicated (retransmission on)\n",
			st.FaultLost, st.FaultCorrupted, st.FaultDuplicated)
	}

	if *state != "" {
		defer func() {
			if err := os.WriteFile(*state, d.Backend.Snapshot(), 0o600); err != nil {
				fail(err)
			}
			fmt.Printf("\nbackend snapshot written to %s\n", *state)
		}()
	}

	if *churn {
		fmt.Println("\n--- churn: revoking the subject at the backend ---")
		rep, err := d.Backend.RevokeSubject(d.Subject.ID())
		if err != nil {
			fail(err)
		}
		fmt.Printf("backend notified %d objects (N) and re-keyed %d fellows (γ−1)\n",
			len(rep.NotifiedObjects), len(rep.NotifiedSubjects))
		for i, o := range d.Objects {
			prov, err := d.Backend.ProvisionObject(o.ID())
			if err != nil {
				fail(err)
			}
			d.Objects[i].Refresh(prov)
		}
		before := len(d.Subject.Results())
		if _, err := d.Run(*ttl); err != nil {
			fail(err)
		}
		after := d.Subject.Results()[before:]
		var secure int
		for _, r := range after {
			if r.Level != backend.L1 {
				secure++
			}
		}
		fmt.Printf("round 2 (revoked): %d discoveries, %d at Level 2/3 (public Level 1 services remain visible)\n",
			len(after), secure)
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, reg); err != nil {
			fail(err)
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metrics)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("%d discovery spans written to %s\n", tracer.Len(), *traceOut)
	}
	if *httpAddr != "" {
		fmt.Printf("\nserving telemetry on http://%s/metrics (Ctrl-C to exit)\n", *httpAddr)
		fail(http.ListenAndServe(*httpAddr, obs.NewMux(reg, tracer)))
	}
}

// writeMetrics serializes the registry: JSON for .json paths, Prometheus
// text format otherwise. Both forms parse back with argus-inspect -json.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	if strings.HasSuffix(path, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseMix(mix string, n int) ([]backend.Level, error) {
	parts := strings.Split(mix, ",")
	cycle := make([]backend.Level, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 || v > 3 {
			return nil, fmt.Errorf("bad level %q in -mix", p)
		}
		cycle = append(cycle, backend.Level(v))
	}
	out := make([]backend.Level, n)
	for i := range out {
		out[i] = cycle[i%len(cycle)]
	}
	return out, nil
}

func shortID(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "argus-sim:", err)
	os.Exit(1)
}
