package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"argus/internal/fleetcoord"
	"argus/internal/load"
	"argus/internal/scale"
)

// capacityOpts carries the -capacity flag group from main into runCapacity.
type capacityOpts struct {
	procs   int
	nodeBin string
	start   float64
	growth  float64
	tol     float64
	trials  int
	ceiling float64
	dur     time.Duration
	out     string
	quiet   bool

	backendURL, tenant, authKey string
}

// capacityDoc is the JSON document -capacity emits: the measured search
// next to the analytic scale model's prediction, so BENCH_10 (and anyone
// reading it later) can see how far measurement and model diverge.
type capacityDoc struct {
	Profile      string               `json:"profile"`
	Procs        int                  `json:"procs"`
	Cores        int                  `json:"cores"`
	TrialSeconds float64              `json:"trial_seconds"`
	WarmSessions int64                `json:"warm_sessions"`
	WarmSeconds  float64              `json:"warm_seconds"`
	Search       *load.CapacityResult `json:"search"`
	Model        scale.CapacityModel  `json:"model"`
	// PredictedKnee is Model.Predict(Procs): the per-session warm cost
	// scaled by process count and core budget.
	PredictedKnee float64 `json:"predicted_knee_sessions_per_second"`
	// ProcErrors aggregates children that died mid-search (multi-process
	// runs only); each is also folded into its trial's violations.
	ProcErrors []string `json:"proc_errors,omitempty"`
}

// findNodeBin resolves the shard-child binary: an explicit -node-bin wins,
// then an argus-node sitting next to this executable, then $PATH.
func findNodeBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "argus-node")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	return exec.LookPath("argus-node")
}

// runCapacity searches for the knee: the highest open-loop offered rate
// (sessions/s) the fleet sustains under the trial SLO. With procs <= 1 the
// fleet lives in this process; otherwise fleetcoord shards it across child
// argus-node processes and each trial is a merged cross-process verdict.
func runCapacity(name string, p load.Profile, o capacityOpts) int {
	logf := func(string, ...any) {}
	if !o.quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	cfg := load.CapacityConfig{
		Start:     o.start,
		Growth:    o.growth,
		Tolerance: o.tol,
		MaxTrials: o.trials,
		Ceiling:   o.ceiling,
		Logf:      logf,
	}

	doc := capacityDoc{Profile: name, Procs: o.procs, Cores: runtime.GOMAXPROCS(0)}
	if doc.Procs < 1 {
		doc.Procs = 1
	}

	var trial load.TrialFunc
	if o.procs <= 1 {
		cs, err := load.OpenCapacitySession(p, o.dur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		defer cs.Close()
		doc.WarmSessions, doc.WarmSeconds = cs.WarmSessions, cs.WarmSeconds
		doc.TrialSeconds = o.dur.Seconds()
		if doc.TrialSeconds <= 0 {
			doc.TrialSeconds = 5
		}
		trial = cs.Trial
	} else {
		bin, err := findNodeBin(o.nodeBin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: locate argus-node: %v (set -node-bin)\n", err)
			return 2
		}
		work, err := os.MkdirTemp("", "argus-fleet-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		defer os.RemoveAll(work)
		co, err := fleetcoord.Launch(fleetcoord.Config{
			Procs:           o.procs,
			Cells:           p.Cells,
			SubjectsPerCell: p.SubjectsPerCell,
			ObjectsPerCell:  p.ObjectsPerCell,
			BinPath:         bin,
			BaseArgs:        []string{"-role", "shard", "--"},
			BackendURL:      o.backendURL,
			Tenant:          o.tenant,
			AuthKey:         o.authKey,
			WorkDir:         work,
			TrialSLO:        load.TrialSLO(p.SLO),
			Logf:            logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		defer co.Close()
		if err := co.Sweep(); err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: warm sweep: %v\n", err)
			return 2
		}
		doc.WarmSessions, doc.WarmSeconds = co.WarmSessions, co.WarmSeconds
		dur := o.dur
		if dur <= 0 {
			dur = 5 * time.Second
		}
		doc.TrialSeconds = dur.Seconds()
		trial = func(offered float64) (load.Trial, error) {
			v, err := co.Trial(offered, dur)
			if err != nil {
				return load.Trial{}, err
			}
			doc.ProcErrors = append(doc.ProcErrors, v.ProcErrors...)
			return v.Trial, nil
		}
	}

	// Calibrate the analytic model from the warm closed wave so the doc
	// carries prediction and measurement side by side.
	doc.Model = scale.Calibrate(doc.WarmSessions, doc.WarmSeconds, doc.Cores)
	doc.PredictedKnee = doc.Model.Predict(doc.Procs)

	res, err := load.SearchCapacity(cfg, trial)
	if err != nil {
		fmt.Fprintf(os.Stderr, "argus-load: capacity search: %v\n", err)
		return 2
	}
	doc.Search = res

	w := os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "argus-load: write report: %v\n", err)
		return 2
	}

	if res.Knee <= 0 {
		fmt.Fprintf(os.Stderr, "argus-load: capacity: nothing sustained (first fail %.1f sessions/s, bottleneck %s)\n",
			res.FirstFail, res.Bottleneck)
		return 1
	}
	if !o.quiet {
		verdict := fmt.Sprintf("knee %.1f sessions/s", res.Knee)
		if res.HitCeiling {
			verdict += " (ceiling, lower bound)"
		}
		if res.Bottleneck != "" {
			verdict += fmt.Sprintf(", bottleneck %s", res.Bottleneck)
		}
		fmt.Fprintf(os.Stderr, "argus-load: capacity: %s over %d procs; model predicted %.1f (%d trials)\n",
			verdict, doc.Procs, doc.PredictedKnee, len(res.Trials))
	}
	return 0
}
