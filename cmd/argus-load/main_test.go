package main

// E2E over the -obs flag: a real argus-load process (the ARGUS_LOAD_CHILD
// trampoline) serves its obs plane while a small soak runs, and the test
// tails /events exactly like argus-ops does, asserting the live stream
// carries snapshot, span and the harness's free-form wave/churn/report
// frames before the run ends.

import (
	"bufio"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"argus/internal/realtime"
)

func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_LOAD_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestObsPlaneStreamsLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(os.Args[0],
		"-profile", "ci-soak", "-cells", "1", "-subjects", "2", "-objects", "2",
		"-waves", "1", "-min-peak", "-1", "-obs", "127.0.0.1:0", "-quiet", "-out", out)
	cmd.Env = append(os.Environ(), "ARGUS_LOAD_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "obs listening addr="); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("argus-load never announced its obs plane (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	seen := map[string]bool{}
	err = realtime.Tail(ctx, "http://"+addr+"/events", func(ev realtime.Event) error {
		seen[ev.Type] = true
		if seen[realtime.EventSnapshot] && seen[realtime.EventSpan] &&
			seen["wave"] && seen["churn"] && seen["report"] {
			return realtime.Stop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("tail: %v (seen %v)", err, seen)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("argus-load exited %v (want SLO pass)", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("report not written: %v", err)
	}
}

// TestProfileFlagsWriteHeadlessProfiles runs a tiny soak with -cpuprofile
// and -memprofile and asserts both pprof files land non-empty — the
// headless profiling workflow documented in the README.
func TestProfileFlagsWriteHeadlessProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := filepath.Join(dir, "report.json")
	cmd := exec.Command(os.Args[0],
		"-profile", "ci-soak", "-cells", "1", "-subjects", "2", "-objects", "2",
		"-waves", "1", "-min-peak", "-1", "-quiet", "-out", out,
		"-cpuprofile", cpu, "-memprofile", mem)
	cmd.Env = append(os.Environ(), "ARGUS_LOAD_CHILD=1")
	if outB, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("argus-load: %v\n%s", err, outB)
	}
	for _, p := range []string{cpu, mem, out} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", filepath.Base(p), err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", filepath.Base(p))
		}
	}
}
