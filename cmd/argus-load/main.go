// Command argus-load drives large fleets of concurrent discovery sessions
// against a full provisioned enterprise and holds the run to an SLO. It is
// the repo's load/soak front end: pick a built-in profile (or override its
// knobs), run it, and get a machine-readable report — the same pipeline that
// produces BENCH_5.json via `make bench-json`.
//
// Usage:
//
//	argus-load -list
//	argus-load -profile ci-soak
//	argus-load -profile standard -out BENCH_5.json
//	argus-load -profile ci-soak -cells 4 -subjects 4 -waves 2 -seed 3
//	argus-load -profile ci-soak -obs 127.0.0.1:0   # then: argus-ops -attach <addr>
//	argus-load -service-churn -out BENCH_8.json    # live churn vs §VIII closed form
//
// The report is written as indented JSON to stdout (or -out); progress lines
// go to stderr unless -quiet. Exit status is 0 only when every SLO check
// passes, so the command slots directly into CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"argus/internal/load"
)

func main() { os.Exit(run()) }

// run executes the command and returns the process exit code. It exists so
// the deferred profile writers fire on every exit path, including SLO
// failures.
func run() int {
	var (
		profile  = flag.String("profile", "ci-soak", "built-in profile name (see -list)")
		list     = flag.Bool("list", false, "list built-in profiles and exit")
		out      = flag.String("out", "", "write the JSON report to this file instead of stdout")
		quiet    = flag.Bool("quiet", false, "suppress progress lines on stderr")
		cells    = flag.Int("cells", 0, "override: number of cells (broadcast domains)")
		subjects = flag.Int("subjects", 0, "override: subjects per cell")
		objects  = flag.Int("objects", 0, "override: objects per cell")
		waves    = flag.Int("waves", 0, "override: closed-loop wave count")
		seed     = flag.Int64("seed", -1, "override: harness seed (victim choice, open-loop arrivals)")
		drain    = flag.Duration("drain", 0, "override: per-wave drain timeout")
		minPeak  = flag.Int64("min-peak", -2, "override: SLO floor on peak armed concurrency (-1 disables)")
		obsAddr  = flag.String("obs", "", "serve the live obs plane (/metrics, /trace.json, /events) on this address during the run")
		roam     = flag.Float64("roam", -1, "override: fraction of each cell's subjects that roam to the next cell per wave")
		sleepy   = flag.Float64("sleepy", -1, "override: fraction of each cell's objects that duty-cycle their radio")
		replay   = flag.Int("replay", -1, "override: replay-adversary targets per cell (0 disables the persona)")
		sybil    = flag.Int("sybil", -1, "override: Sybil-flood rounds per cell (0 disables the persona)")
		observer = flag.Bool("observer", false, "override: run the crowd observer and gate on the covertness verdict")
		broken   = flag.Bool("broken-scoping", false, "override: deliberately break L3 scoping (negative control for the covertness gate)")
		alpha    = flag.Float64("covert-alpha", -1, "override: SLO significance floor for the covertness p-values (0 disables)")

		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (headless alternative to -obs /debug/pprof)")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (after the run, post-GC) to this file")

		capacity   = flag.Bool("capacity", false, "search for the max sustainable open-loop rate instead of running the profile once")
		procs      = flag.Int("procs", 0, "capacity: shard the fleet across this many argus-node child processes (implies -capacity)")
		nodeBin    = flag.String("node-bin", "", "capacity: path to the argus-node binary for -procs children (default: next to argus-load, then $PATH)")
		capStart   = flag.Float64("cap-start", 0, "capacity: first offered rate in sessions/s (0 = default)")
		capGrowth  = flag.Float64("cap-growth", 0, "capacity: bracket growth multiplier (0 = default)")
		capTol     = flag.Float64("cap-tol", 0, "capacity: relative bracket tolerance to converge at (0 = default)")
		capTrials  = flag.Int("cap-trials", 0, "capacity: hard trial budget (0 = default)")
		capCeiling = flag.Float64("cap-ceiling", 0, "capacity: never offer beyond this rate (0 = unbounded)")
		capDur     = flag.Duration("cap-duration", 0, "capacity: measured window per trial (0 = default)")
		capBackend = flag.String("cap-backend", "", "capacity: provision the -procs fleet from this live argus-backend URL instead of a snapshot")
		capTenant  = flag.String("cap-tenant", "demo", "capacity: tenant namespace on -cap-backend")
		capAuthKey = flag.String("cap-auth-key", "", "capacity: tenant auth key for -cap-backend")

		svcChurn  = flag.Bool("service-churn", false, "run the live-churn benchmark against a multi-tenant backend service and exit")
		churnN    = flag.Int("churn-n", 0, "service-churn: accessible objects per subject (0 = default)")
		churnOps  = flag.Int("churn-ops", 0, "service-churn: repetitions per operation (0 = default)")
		churnHTTP = flag.Bool("churn-local", false, "service-churn: keep churn in-process instead of over HTTP")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: start cpu profile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "argus-load: write heap profile: %v\n", err)
			}
		}()
	}

	if *svcChurn {
		cfg := load.DefaultServiceChurnConfig()
		if *churnN > 0 {
			cfg.N = *churnN
		}
		if *churnOps > 0 {
			cfg.Ops = *churnOps
		}
		cfg.HTTP = !*churnHTTP
		if !*quiet {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		rep, err := load.RunServiceChurn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: write report: %v\n", err)
			return 2
		}
		if !rep.Match {
			fmt.Fprintln(os.Stderr, "argus-load: live churn diverged from the §VIII closed form")
			return 1
		}
		return 0
	}

	profiles := load.Profiles()
	if *list {
		names := make([]string, 0, len(profiles))
		for name := range profiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := profiles[name]
			fmt.Printf("%-12s %5d subj × %4d obj over %-4s  %s\n",
				name, p.Subjects(), p.Objects(), p.Transport, p.Description)
		}
		return 0
	}

	p, ok := profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "argus-load: unknown profile %q (try -list)\n", *profile)
		return 2
	}
	if *cells > 0 {
		p.Cells = *cells
	}
	if *subjects > 0 {
		p.SubjectsPerCell = *subjects
	}
	if *objects > 0 {
		p.ObjectsPerCell = *objects
	}
	if *waves > 0 {
		p.Waves = *waves
	}
	if *seed >= 0 {
		p.Seed = *seed
	}
	if *drain > 0 {
		p.DrainTimeout = *drain
	}
	if *minPeak >= -1 {
		p.SLO.MinPeakConcurrent = *minPeak
	}
	if *roam >= 0 {
		p.RoamFrac = *roam
	}
	if *sleepy >= 0 {
		p.SleepyFrac = *sleepy
	}
	if *replay >= 0 {
		p.ReplayTargets = *replay
	}
	if *sybil >= 0 {
		p.SybilRounds = *sybil
	}
	if *observer {
		p.Observer = true
	}
	if *broken {
		p.BreakScoping = true
	}
	if *alpha >= 0 {
		p.SLO.CovertnessAlpha = *alpha
	}
	if !*quiet {
		p.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *capacity || *procs > 0 {
		return runCapacity(*profile, p, capacityOpts{
			procs:      *procs,
			nodeBin:    *nodeBin,
			start:      *capStart,
			growth:     *capGrowth,
			tol:        *capTol,
			trials:     *capTrials,
			ceiling:    *capCeiling,
			dur:        *capDur,
			out:        *out,
			quiet:      *quiet,
			backendURL: *capBackend,
			tenant:     *capTenant,
			authKey:    *capAuthKey,
		})
	}

	var obsSrv *obsServer
	if *obsAddr != "" {
		var oerr error
		if obsSrv, oerr = serveObs(&p, *obsAddr); oerr != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", oerr)
			return 2
		}
	}

	start := time.Now()
	rep, err := load.Run(p)
	obsSrv.stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
		return 2
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-load: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "argus-load: write report: %v\n", err)
		return 2
	}

	if !rep.SLO.Pass {
		fmt.Fprintf(os.Stderr, "argus-load: SLO FAIL after %.1fs:\n", time.Since(start).Seconds())
		for _, v := range rep.SLO.Violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"argus-load: SLO PASS — %d sessions, peak %d concurrent, %.0f sessions/s, %.1fs total\n",
			rep.Totals.Completed, rep.Totals.PeakInflight,
			rep.Totals.SessionsPerSecond, time.Since(start).Seconds())
	}
	return 0
}
