package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"argus/internal/load"
	"argus/internal/obs"
	"argus/internal/realtime"
)

// obsServer is argus-load's optional live obs plane: the run's registry and
// tracer served over HTTP with a realtime hub at /events, so argus-ops can
// tail a soak while it executes. The bound address is announced on stderr
// (":0" picks a port; the ops-smoke script parses the line).
type obsServer struct {
	hub *realtime.Hub
	srv *http.Server
}

// serveObs starts the plane and wires the profile's telemetry fields so the
// harness reports into the served registry and publishes wave/churn/report
// frames to the hub.
func serveObs(p *load.Profile, addr string) (*obsServer, error) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	hub := realtime.New(realtime.Config{Registry: reg, Tracer: tr})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		hub.Close()
		return nil, fmt.Errorf("obs listen: %w", err)
	}
	srv := &http.Server{Handler: obs.NewMux(reg, tr, obs.WithStream(hub.StreamHandler()))}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "obs listening addr=%s\n", ln.Addr())
	p.Registry, p.Tracer, p.Events = reg, tr, hub
	return &obsServer{hub: hub, srv: srv}, nil
}

// stop closes the hub first — every subscriber stream drains its queued
// frames (the runner's final report and snapshot are already in them) and
// ends — then shuts the listener down, escalating to a hard close if a
// client never disconnects. Safe on nil.
func (s *obsServer) stop() {
	if s == nil {
		return
	}
	s.hub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if s.srv.Shutdown(ctx) != nil {
		s.srv.Close()
	}
}
