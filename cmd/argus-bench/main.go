// Command argus-bench regenerates every table and figure of the paper's
// evaluation (§VIII Table I, §IX-A message overhead, Fig 6a–6h) and prints
// paper-style rows next to the values the paper reports.
//
// Usage:
//
//	argus-bench -list
//	argus-bench -exp fig6e
//	argus-bench -exp table1,msgsize,fig6b -markdown
//	argus-bench -exp all [-quick]
//	argus-bench -exp table1 -json        # machine-readable result array
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"argus/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick   = flag.Bool("quick", false, "smaller sweeps / fewer iterations")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		md      = flag.Bool("markdown", false, "render results as Markdown tables")
		jsonOut = flag.Bool("json", false, "emit results as a JSON array on stdout")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := exp.IDs()
	if *which != "all" {
		ids = nil
		for _, id := range strings.Split(*which, ",") {
			id = strings.TrimSpace(id)
			if _, ok := exp.Registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "argus-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	failed := 0
	var collected []*exp.Result
	for _, id := range ids {
		start := time.Now()
		res, err := exp.Registry[id](*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "argus-bench: %s failed: %v\n", id, err)
			failed++
			continue
		}
		switch {
		case *jsonOut:
			collected = append(collected, res)
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
			continue
		case *md:
			fmt.Println(res.Markdown())
		default:
			fmt.Println(res)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "argus-bench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
