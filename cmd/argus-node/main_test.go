package main

// End-to-end: real OS processes, real UDP sockets, the full 4-way handshake
// at every visibility level. The test re-executes its own binary as
// argus-node (the ARGUS_NODE_CHILD trampoline below), so `go test` needs no
// pre-built artifact: one child serves three objects (L1/L2/L3) on loopback
// sockets, another runs the subject until it has verified all three levels.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_NODE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// child builds an exec.Cmd that re-runs this test binary as argus-node.
func child(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ARGUS_NODE_CHILD=1")
	return cmd
}

func TestE2EDiscoveryOverUDPLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	snap := filepath.Join(t.TempDir(), "enterprise.snap")

	// 1. Provision the enterprise through the CLI path.
	out, err := child("-init", "-snapshot", snap).CombinedOutput()
	if err != nil {
		t.Fatalf("-init failed: %v\n%s", err, out)
	}

	// 2. Object daemon: three engines (one per level) on their own sockets.
	objects := child("-role", "object", "-names", "thermometer,printer,kiosk",
		"-snapshot", snap, "-listen", "127.0.0.1:0")
	objOut, err := objects.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	objects.Stderr = os.Stderr
	if err := objects.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		objects.Process.Kill()
		objects.Wait()
	})

	// Parse the three "listening name=... addr=..." lines.
	addrs := make(map[string]string)
	sc := bufio.NewScanner(objOut)
	for len(addrs) < 3 && sc.Scan() {
		line := sc.Text()
		var name, addr string
		if _, err := fmt.Sscanf(line, "listening name=%s addr=%s", &name, &addr); err == nil {
			addrs[name] = addr
		}
	}
	if len(addrs) != 3 {
		t.Fatalf("object daemon announced %d sockets, want 3 (scan err %v)", len(addrs), sc.Err())
	}
	go io.Copy(io.Discard, objOut) // keep the pipe drained

	// 3. Subject process: must verify every level within the deadline.
	peers := []string{addrs["thermometer"], addrs["printer"], addrs["kiosk"]}
	subject := child("-role", "subject", "-name", "alice", "-snapshot", snap,
		"-listen", "127.0.0.1:0", "-peers", strings.Join(peers, ","),
		"-ttl", "1", "-expect", "thermometer=L1,printer=L2,kiosk=L3",
		"-timeout", "30s")
	start := time.Now()
	sout, err := subject.CombinedOutput()
	if err != nil {
		t.Fatalf("subject failed after %v: %v\n%s", time.Since(start), err, sout)
	}
	text := string(sout)
	for _, want := range []string{
		"discovered name=thermometer level=L1",
		"discovered name=printer level=L2",
		"discovered name=kiosk level=L3",
		"all expectations met",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("subject output missing %q:\n%s", want, text)
		}
	}
}
