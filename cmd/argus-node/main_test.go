package main

// End-to-end: real OS processes, real UDP sockets, the full 4-way handshake
// at every visibility level. The test re-executes its own binary as
// argus-node (the ARGUS_NODE_CHILD trampoline below), so `go test` needs no
// pre-built artifact: one child serves three objects (L1/L2/L3) on loopback
// sockets, another runs the subject until it has verified all three levels.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendsvc"
	"argus/internal/obs"
	"argus/internal/suite"
)

func TestMain(m *testing.M) {
	if os.Getenv("ARGUS_NODE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// child builds an exec.Cmd that re-runs this test binary as argus-node.
func child(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ARGUS_NODE_CHILD=1")
	return cmd
}

func TestE2EDiscoveryOverUDPLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	snap := filepath.Join(t.TempDir(), "enterprise.snap")

	// 1. Provision the enterprise through the CLI path.
	out, err := child("-init", "-snapshot", snap).CombinedOutput()
	if err != nil {
		t.Fatalf("-init failed: %v\n%s", err, out)
	}

	// 2. Object daemon: three engines (one per level) on their own sockets.
	objects := child("-role", "object", "-names", "thermometer,printer,kiosk",
		"-snapshot", snap, "-listen", "127.0.0.1:0")
	objOut, err := objects.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	objects.Stderr = os.Stderr
	if err := objects.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		objects.Process.Kill()
		objects.Wait()
	})

	// Parse the three "listening name=... addr=..." lines.
	addrs := make(map[string]string)
	sc := bufio.NewScanner(objOut)
	for len(addrs) < 3 && sc.Scan() {
		line := sc.Text()
		var name, addr string
		if _, err := fmt.Sscanf(line, "listening name=%s addr=%s", &name, &addr); err == nil {
			addrs[name] = addr
		}
	}
	if len(addrs) != 3 {
		t.Fatalf("object daemon announced %d sockets, want 3 (scan err %v)", len(addrs), sc.Err())
	}
	go io.Copy(io.Discard, objOut) // keep the pipe drained

	// 3. Subject process: must verify every level within the deadline.
	peers := []string{addrs["thermometer"], addrs["printer"], addrs["kiosk"]}
	subject := child("-role", "subject", "-name", "alice", "-snapshot", snap,
		"-listen", "127.0.0.1:0", "-peers", strings.Join(peers, ","),
		"-ttl", "1", "-expect", "thermometer=L1,printer=L2,kiosk=L3",
		"-timeout", "30s")
	start := time.Now()
	sout, err := subject.CombinedOutput()
	if err != nil {
		t.Fatalf("subject failed after %v: %v\n%s", time.Since(start), err, sout)
	}
	text := string(sout)
	for _, want := range []string{
		"discovered name=thermometer level=L1",
		"discovered name=printer level=L2",
		"discovered name=kiosk level=L3",
		"all expectations met",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("subject output missing %q:\n%s", want, text)
		}
	}
}

// TestE2EDiscoveryFromBackendHTTP runs the same three-level discovery, but
// the node processes source their trust anchor and provisioning bundles from
// a live backend service over the versioned /v1 HTTP API instead of a
// snapshot file — no enterprise state ever touches the node side's disk.
func TestE2EDiscoveryFromBackendHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// The backend service: a real HTTP listener on loopback, multi-tenant
	// store in a scratch directory, demo enterprise in tenant "demo".
	store, err := backendsvc.OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := store.Create("demo", suite.S128, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var svc backend.Service = tn
	sid, _, err := svc.RegisterSubject(ctx, "alice", attr.MustSet("position=staff"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.AddPolicy(ctx, attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterObject(ctx, "thermometer", backend.L1,
		attr.MustSet("type=thermometer"), []string{"read-temperature"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterObject(ctx, "printer", backend.L2,
		attr.MustSet("type=printer"), []string{"print"}); err != nil {
		t.Fatal(err)
	}
	kid, _, err := svc.RegisterObject(ctx, "kiosk", backend.L3,
		attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		t.Fatal(err)
	}
	gid, err := svc.CreateGroup(ctx, "fellows")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddCovertService(ctx, kid, gid, []string{"use", "covert-bulletin"}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddSubjectToGroup(ctx, sid, gid); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(backendsvc.NewServer(store, "root", nil).Handler())
	t.Cleanup(api.Close)
	backendFlags := []string{"-backend", api.URL, "-tenant", "demo", "-auth-key", tn.AuthKey()}

	objects := child(append([]string{"-role", "object", "-names", "thermometer,printer,kiosk",
		"-listen", "127.0.0.1:0"}, backendFlags...)...)
	objOut, err := objects.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	objects.Stderr = os.Stderr
	if err := objects.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		objects.Process.Kill()
		objects.Wait()
	})
	addrs := make(map[string]string)
	sc := bufio.NewScanner(objOut)
	for len(addrs) < 3 && sc.Scan() {
		var name, addr string
		if _, err := fmt.Sscanf(sc.Text(), "listening name=%s addr=%s", &name, &addr); err == nil {
			addrs[name] = addr
		}
	}
	if len(addrs) != 3 {
		t.Fatalf("object daemon announced %d sockets, want 3 (scan err %v)", len(addrs), sc.Err())
	}
	go io.Copy(io.Discard, objOut)

	peers := []string{addrs["thermometer"], addrs["printer"], addrs["kiosk"]}
	subject := child(append([]string{"-role", "subject", "-name", "alice",
		"-listen", "127.0.0.1:0", "-peers", strings.Join(peers, ","),
		"-ttl", "1", "-expect", "thermometer=L1,printer=L2,kiosk=L3",
		"-timeout", "30s"}, backendFlags...)...)
	sout, err := subject.CombinedOutput()
	if err != nil {
		t.Fatalf("subject failed: %v\n%s", err, sout)
	}
	for _, want := range []string{
		"discovered name=thermometer level=L1",
		"discovered name=printer level=L2",
		"discovered name=kiosk level=L3",
		"all expectations met",
	} {
		if !strings.Contains(string(sout), want) {
			t.Errorf("subject output missing %q:\n%s", want, sout)
		}
	}
}

// sumMetric totals one family across label sets in an unmarshaled snapshot.
func sumMetric(snap *obs.Snapshot, name string) float64 {
	var total float64
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == name {
			total += snap.Metrics[i].Value
		}
	}
	return total
}

// TestGracefulShutdownFlushesObs: an object daemon serving the obs plane
// answers /metrics, and on SIGTERM exits 0 with the final registry snapshot
// flushed to -obs-out.
func TestGracefulShutdownFlushesObs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "enterprise.snap")
	if out, err := child("-init", "-snapshot", snap).CombinedOutput(); err != nil {
		t.Fatalf("-init failed: %v\n%s", err, out)
	}
	obsOut := filepath.Join(dir, "final.obs.json")
	objects := child("-role", "object", "-names", "thermometer",
		"-snapshot", snap, "-listen", "127.0.0.1:0",
		"-obs", "127.0.0.1:0", "-obs-out", obsOut)
	stdout, err := objects.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	objects.Stderr = os.Stderr
	if err := objects.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		objects.Process.Kill()
		objects.Wait()
	})

	var obsAddr string
	listening := false
	sc := bufio.NewScanner(stdout)
	for (obsAddr == "" || !listening) && sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "obs listening addr=") {
			obsAddr = strings.TrimPrefix(line, "obs listening addr=")
		}
		if strings.HasPrefix(line, "listening name=") {
			listening = true
		}
	}
	if obsAddr == "" || !listening {
		t.Fatalf("daemon never announced obs+engine (scan err %v)", sc.Err())
	}

	resp, err := http.Get("http://" + obsAddr + "/metrics")
	if err != nil {
		t.Fatalf("live /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}

	go io.Copy(io.Discard, stdout)
	if err := objects.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := objects.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v (want graceful 0)", err)
	}
	blob, err := os.ReadFile(obsOut)
	if err != nil {
		t.Fatalf("final snapshot not written: %v", err)
	}
	var final obs.Snapshot
	if err := json.Unmarshal(blob, &final); err != nil {
		t.Fatalf("final snapshot not valid JSON: %v", err)
	}
}

// TestGatewayDLQDrainOnSIGTERM: the gateway role parks pushes to an offline
// target, and graceful shutdown reattaches it, redelivers the backlog, and
// flushes a snapshot whose DLQ depth gauge reads zero.
func TestGatewayDLQDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "enterprise.snap")
	if out, err := child("-init", "-snapshot", snap).CombinedOutput(); err != nil {
		t.Fatalf("-init failed: %v\n%s", err, out)
	}

	objects := child("-role", "object", "-names", "printer,kiosk",
		"-snapshot", snap, "-listen", "127.0.0.1:0")
	objOut, err := objects.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	objects.Stderr = os.Stderr
	if err := objects.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		objects.Process.Kill()
		objects.Wait()
	})
	addrs := make(map[string]string)
	osc := bufio.NewScanner(objOut)
	for len(addrs) < 2 && osc.Scan() {
		var name, addr string
		if _, err := fmt.Sscanf(osc.Text(), "listening name=%s addr=%s", &name, &addr); err == nil {
			addrs[name] = addr
		}
	}
	if len(addrs) != 2 {
		t.Fatalf("object daemon announced %d sockets, want 2 (scan err %v)", len(addrs), osc.Err())
	}
	go io.Copy(io.Discard, objOut)

	gwOut := filepath.Join(dir, "gateway.obs.json")
	gw := child("-role", "gateway", "-snapshot", snap,
		"-targets", "printer="+addrs["printer"]+",kiosk="+addrs["kiosk"],
		"-reprovision-every", "50ms", "-offline", "printer",
		"-obs-out", gwOut)
	gwPipe, err := gw.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	gw.Stderr = os.Stderr
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Process.Kill()
		gw.Wait()
	})

	// Let a few pushes park for the offline target before shutting down.
	pushes := 0
	sc := bufio.NewScanner(gwPipe)
	for pushes < 3 && sc.Scan() {
		if strings.HasPrefix(sc.Text(), "pushed kind=reprovision") {
			pushes++
		}
	}
	if pushes < 3 {
		t.Fatalf("gateway pushed %d times (scan err %v)", pushes, sc.Err())
	}
	if err := gw.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail strings.Builder
	for sc.Scan() {
		tail.WriteString(sc.Text() + "\n")
	}
	if err := gw.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v (want graceful drain)\n%s", err, tail.String())
	}
	text := tail.String()
	if !strings.Contains(text, "reattached name=printer") {
		t.Fatalf("shutdown never reattached the offline target:\n%s", text)
	}
	if !strings.Contains(text, "drained depth=0") {
		t.Fatalf("shutdown never drained the DLQ:\n%s", text)
	}

	blob, err := os.ReadFile(gwOut)
	if err != nil {
		t.Fatalf("final snapshot not written: %v", err)
	}
	var final obs.Snapshot
	if err := json.Unmarshal(blob, &final); err != nil {
		t.Fatalf("final snapshot not valid JSON: %v", err)
	}
	if v := sumMetric(&final, obs.MUpdateDLQDepth); v != 0 {
		t.Fatalf("final DLQ depth = %v, want 0", v)
	}
	if v := sumMetric(&final, obs.MUpdateUndeliverable); v < 3 {
		t.Fatalf("undeliverable = %v, want >= 3 parked pushes", v)
	}
	if v := sumMetric(&final, obs.MUpdateRedelivered); v < 3 {
		t.Fatalf("redelivered = %v, want >= 3", v)
	}
}
