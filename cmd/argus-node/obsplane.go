package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"

	"argus/internal/obs"
	"argus/internal/realtime"
)

// obsPlane is the process's observability side: a registry and tracer every
// engine reports into, a realtime hub streaming frames at /events, and — when
// -obs is set — an HTTP listener serving the obs mux. The registry and tracer
// exist even without a listener so -obs-out can flush a final snapshot from
// an otherwise headless node.
type obsPlane struct {
	reg *obs.Registry
	tr  *obs.Tracer
	hub *realtime.Hub
	srv *http.Server
	out string // -obs-out path, "" = none
}

// newObsPlane builds the plane and, when addr is non-empty, starts serving
// /metrics, /trace.json and /events on it, announcing the bound address on
// stdout (":0" picks a port, so callers parse the line).
func newObsPlane(addr, out string) (*obsPlane, error) {
	p := &obsPlane{reg: obs.NewRegistry(), tr: obs.NewTracer(), out: out}
	p.hub = realtime.New(realtime.Config{Registry: p.reg, Tracer: p.tr})
	if addr == "" {
		return p, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		p.hub.Close()
		return nil, fmt.Errorf("obs listen: %w", err)
	}
	p.srv = &http.Server{Handler: obs.NewMux(p.reg, p.tr, obs.WithStream(p.hub.StreamHandler()))}
	go p.srv.Serve(ln)
	fmt.Printf("obs listening addr=%s\n", ln.Addr())
	return p, nil
}

// flush publishes one final snapshot frame, writes the snapshot to -obs-out
// (atomically: temp file + rename, so a watcher never reads a torn file),
// and tears the plane down. Safe on a nil plane.
func (p *obsPlane) flush() error {
	if p == nil {
		return nil
	}
	p.hub.PublishSnapshot()
	var err error
	if p.out != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err = enc.Encode(p.reg.Snapshot()); err == nil {
			tmp := p.out + ".tmp"
			if err = os.WriteFile(tmp, buf.Bytes(), 0o644); err == nil {
				err = os.Rename(tmp, p.out)
			}
		}
	}
	p.hub.Close()
	if p.srv != nil {
		p.srv.Close()
	}
	return err
}
