// Command argus-node runs one Argus entity — a subject or one or more
// objects — as a real OS process speaking the discovery protocol over UDP.
// It is the transport abstraction's proof of life: the same engines that
// replay deterministically inside the simulator complete L1/L2/L3 discovery
// between processes on a real network.
//
// Enterprise state comes from one of two sources. The default is a backend
// snapshot file (internal/backend persistence): -init provisions a small demo
// enterprise and writes the snapshot; node processes restore it to obtain
// their credentials, so every process chains to the same trust anchor without
// a live backend server. Alternatively -backend points at a running
// argus-backend service: the subject and object roles then fetch their trust
// anchor and provisioning bundles over the versioned /v1 HTTP API
// (-tenant/-auth-key select and unlock the namespace), byte-identical to the
// snapshot path. The gateway role always needs -snapshot — it signs update
// notifications, and the admin private key never leaves the backend.
//
// Usage:
//
//	argus-node -init -snapshot enterprise.snap
//	argus-node -role object -names thermometer,printer,kiosk \
//	    -snapshot enterprise.snap -listen 127.0.0.1:0
//	argus-node -role subject -name alice -snapshot enterprise.snap \
//	    -listen 127.0.0.1:0 -peers 127.0.0.1:7101,127.0.0.1:7102 \
//	    -ttl 1 -expect thermometer=L1,printer=L2,kiosk=L3 -timeout 30s
//
// The object daemon prints one "listening name=<name> addr=<host:port>" line
// per engine and serves until killed (or -duration elapses). The subject runs
// discovery rounds until every -expect entry is met (exit 0) or -timeout
// passes (exit 1), printing one "discovered name=... level=..." line per
// verified service.
//
// Every role carries a streaming ops plane: -obs serves /metrics, /trace.json
// and a live /events stream (NDJSON or SSE; tail it with argus-ops), and
// -obs-out flushes a final registry snapshot on exit. Shutdown is graceful on
// SIGTERM/SIGINT: daemons stop taking work, the gateway reattaches and drains
// its dead-letter queues, the final snapshot is published and written, and
// the process exits 0.
//
//	argus-node -role gateway -snapshot enterprise.snap \
//	    -targets printer=127.0.0.1:7102,kiosk=127.0.0.1:7103 \
//	    -reprovision-every 1s -offline printer -reattach-after 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/backendclient"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/fleetcoord"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/transport/transporttest"
	"argus/internal/update"
	"argus/internal/wire"
)

func main() {
	var (
		doInit   = flag.Bool("init", false, "create the demo enterprise and write -snapshot")
		snapshot = flag.String("snapshot", "enterprise.snap", "backend snapshot file")
		backendU = flag.String("backend", "", "argus-backend base URL; subject/object source credentials over HTTP instead of -snapshot")
		tenant   = flag.String("tenant", "demo", "tenant namespace on -backend")
		authKey  = flag.String("auth-key", "", "tenant auth key for -backend")
		role     = flag.String("role", "", "subject | object | gateway | shard")
		name     = flag.String("name", "alice", "subject entity name")
		names    = flag.String("names", "", "comma-separated object entity names")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address (\":0\" picks a port)")
		peers    = flag.String("peers", "", "comma-separated peer addresses (the subject's radio range)")
		ttl      = flag.Int("ttl", 1, "discovery broadcast TTL")
		expect   = flag.String("expect", "", "name=level pairs the subject must discover, e.g. printer=L2,kiosk=L3")
		timeout  = flag.Duration("timeout", 30*time.Second, "subject: give up after this long")
		duration = flag.Duration("duration", 0, "object/gateway: serve for this long then exit (0 = forever)")
		obsAddr  = flag.String("obs", "", "serve /metrics, /trace.json and /events on this address (\":0\" picks a port)")
		obsOut   = flag.String("obs-out", "", "write the final obs snapshot JSON here on exit")
		linger   = flag.Duration("linger", 0, "subject: keep serving the obs plane this long after expectations are met")

		targets       = flag.String("targets", "", "gateway: comma-separated name=host:port update destinations")
		reprovEvery   = flag.Duration("reprovision-every", 0, "gateway: push a reprovision notification to every target at this interval")
		offline       = flag.String("offline", "", "gateway: target names initially offline — their pushes park in the dead-letter queue")
		reattachAfter = flag.Duration("reattach-after", 0, "gateway: reattach the -offline targets after this delay")
		dlqLog        = flag.String("dlq-log", "", "gateway: journal the dead-letter queue to this file so parked notifications survive a crash")
	)
	flag.Parse()

	var err error
	switch {
	case *doInit:
		err = initEnterprise(*snapshot)
	case *role == "shard":
		// The fleet coordinator's child: everything after `--` belongs to
		// the shard's own flag set, and the shard owns its own obs plane
		// (it announces the bound address on stdout for the coordinator).
		err = fleetcoord.ShardMain(flag.Args())
	case *role == "object" || *role == "subject" || *role == "gateway":
		var op *obsPlane
		op, err = newObsPlane(*obsAddr, *obsOut)
		if err != nil {
			break
		}
		switch *role {
		case "object":
			err = runObjects(nodeService(*backendU, *tenant, *authKey, *snapshot), *names, *listen, *duration, op)
		case "subject":
			err = runSubject(nodeService(*backendU, *tenant, *authKey, *snapshot), *name, *listen, *peers, *ttl, *expect, *timeout, *linger, op)
		case "gateway":
			err = runGateway(*snapshot, *targets, *offline, *dlqLog, *reprovEvery, *reattachAfter, *duration, op)
		}
	default:
		err = fmt.Errorf("need -init or -role subject|object|gateway|shard (got %q)", *role)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "argus-node: %v\n", err)
		os.Exit(1)
	}
}

// trapStop subscribes to SIGTERM/SIGINT and returns the channel plus its
// release. Call it BEFORE announcing readiness (the "listening" lines a
// harness synchronizes on): a signal that lands between the announcement
// and the subscription would otherwise kill the process with the default
// disposition instead of the graceful path.
func trapStop() (<-chan os.Signal, func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return sig, func() { signal.Stop(sig) }
}

// awaitStop blocks until a trapped signal arrives, or until d elapses when
// d > 0 — the graceful-shutdown door every daemon role exits through.
func awaitStop(sig <-chan os.Signal, d time.Duration) {
	if d > 0 {
		select {
		case <-sig:
		case <-time.After(d):
		}
		return
	}
	<-sig
}

// initEnterprise provisions the demo deployment the quickstart and the e2e
// test speak to: one staff subject, one object per visibility level, and a
// secret group making the subject a fellow of the kiosk's covert service.
func initEnterprise(path string) error {
	b, err := backend.New(suite.S128)
	if err != nil {
		return err
	}
	if _, _, err := b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"}); err != nil {
		return err
	}
	sid, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		return err
	}
	if _, _, err := b.RegisterObject("thermometer", backend.L1,
		attr.MustSet("type=thermometer"), []string{"read-temperature"}); err != nil {
		return err
	}
	if _, _, err := b.RegisterObject("printer", backend.L2,
		attr.MustSet("type=printer"), []string{"print"}); err != nil {
		return err
	}
	kid, _, err := b.RegisterObject("kiosk", backend.L3,
		attr.MustSet("type=kiosk"), []string{"use"})
	if err != nil {
		return err
	}
	g, err := b.Groups.CreateGroup("fellows")
	if err != nil {
		return err
	}
	if err := b.AddCovertService(kid, g.ID(), []string{"use", "covert-bulletin"}); err != nil {
		return err
	}
	if err := b.AddSubjectToGroup(sid, g.ID()); err != nil {
		return err
	}
	if err := os.WriteFile(path, b.Snapshot(), 0o600); err != nil {
		return err
	}
	fmt.Printf("snapshot %s: subject alice; objects thermometer (L1), printer (L2), kiosk (L3, covert group %q)\n",
		path, "fellows")
	return nil
}

func restore(path string) (*backend.Backend, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return backend.Restore(blob)
}

// nodeService picks the credential source for the subject and object roles:
// a live argus-backend over HTTP when -backend is set, the snapshot file
// otherwise. Deferred behind a thunk so flag validation errors surface from
// the role that needs them.
func nodeService(backendURL, tenant, authKey, snapshot string) func() (backend.Service, error) {
	return func() (backend.Service, error) {
		if backendURL != "" {
			return backendclient.New(backendURL, tenant, authKey), nil
		}
		b, err := restore(snapshot)
		if err != nil {
			return nil, err
		}
		return backend.NewLocal(b), nil
	}
}

// objHolder lets the update agent's apply callback (wired before the engine
// exists) reach the engine built one statement later; the write happens
// before any notification can be enqueued.
type objHolder struct{ obj *core.Object }

// runObjects hosts one engine per name, each on its own UDP socket (one
// socket = one node identity) with an update agent in front, and serves
// until SIGTERM/SIGINT (or -duration), then flushes the obs plane.
func runObjects(src func() (backend.Service, error), names, listen string, duration time.Duration, op *obsPlane) error {
	if names == "" {
		return fmt.Errorf("-role object needs -names")
	}
	svc, err := src()
	if err != nil {
		return err
	}
	sig, release := trapStop()
	defer release()
	ctx := context.Background()
	anchor, err := svc.TrustAnchor(ctx)
	if err != nil {
		return fmt.Errorf("trust anchor: %w", err)
	}
	adminPub, err := anchor.PublicKey()
	if err != nil {
		return fmt.Errorf("trust anchor: %w", err)
	}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		prov, err := svc.ProvisionObject(ctx, cert.IDFromName(n))
		if err != nil {
			return fmt.Errorf("provision %q: %w", n, err)
		}
		ep, err := transport.ListenUDP(transport.UDPConfig{Listen: listen, Registry: op.reg})
		if err != nil {
			return err
		}
		defer ep.Close()
		hold := &objHolder{}
		agent := update.NewAgent(adminPub, nil, func(nt *update.Notification) {
			// Runs on the object's event loop, where Revoke is legal.
			if nt.Kind == update.KindRevokeSubject && hold.obj != nil {
				hold.obj.Revoke(nt.Subject)
			}
		})
		agent.Instrument(op.reg, nil)
		hold.obj = core.NewObject(prov, wire.V30, core.Costs{},
			core.WithEndpoint(agent.Wrap(ep)),
			core.WithRetry(core.DefaultRetry()),
			core.WithTelemetry(op.reg, nil))
		fmt.Printf("listening name=%s addr=%s\n", n, ep.Addr())
	}
	awaitStop(sig, duration)
	return op.flush()
}

// runSubject discovers over UDP until the -expect set is satisfied, then
// lingers on the obs plane (streaming its spans live) for -linger.
func runSubject(src func() (backend.Service, error), name, listen, peers string, ttl int, expect string, timeout, linger time.Duration, op *obsPlane) error {
	svc, err := src()
	if err != nil {
		return err
	}
	prov, err := svc.ProvisionSubject(context.Background(), cert.IDFromName(name))
	if err != nil {
		return fmt.Errorf("provision %q: %w", name, err)
	}
	var peerList []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) == 0 {
		return fmt.Errorf("-role subject needs -peers")
	}
	ep, err := transport.ListenUDP(transport.UDPConfig{Listen: listen, Peers: peerList, Registry: op.reg})
	if err != nil {
		return err
	}
	defer ep.Close()
	subj := core.NewSubject(prov, wire.V30, core.Costs{},
		core.WithEndpoint(ep), core.WithRetry(core.DefaultRetry()),
		core.WithTelemetry(op.reg, op.tr))

	want, err := parseExpect(expect)
	if err != nil {
		return err
	}

	bestOf := func() map[cert.ID]core.Discovery {
		best := map[cert.ID]core.Discovery{}
		for _, r := range subj.Results() {
			if prev, ok := best[r.Object]; !ok || r.Level > prev.Level {
				best[r.Object] = r
			}
		}
		return best
	}

	reported := map[cert.ID]core.Level{}
	deadline := time.Now().Add(timeout)
	for {
		ep.Do(func() {
			if err := subj.Discover(ttl); err != nil {
				fmt.Fprintf(os.Stderr, "argus-node: discover: %v\n", err)
			}
		})
		// Poll for this round's results instead of sleeping a fixed
		// interval: the subject reacts the moment its expectations are met,
		// and a slow machine just polls into the next round. Step and
		// tolerance policy live in internal/transport/transporttest.
		transporttest.Poll(500*time.Millisecond, transporttest.DefaultStep, func() bool {
			return satisfied(want, bestOf())
		})

		best := bestOf()
		for id, r := range best {
			if reported[id] >= r.Level {
				continue
			}
			reported[id] = r.Level
			fmt.Printf("discovered name=%s level=L%d node=%s functions=%s\n",
				nameOf(want, id), int(r.Level), r.Node, strings.Join(r.Profile.Functions, "+"))
		}

		if satisfied(want, best) {
			fmt.Println("all expectations met")
			if linger > 0 {
				sig, release := trapStop()
				awaitStop(sig, linger)
				release()
			}
			return op.flush()
		}
		if time.Now().After(deadline) {
			op.flush()
			return fmt.Errorf("timeout: discovered %d/%d expected services", met(want, best), len(want))
		}
	}
}

type expectation struct {
	name  string
	id    cert.ID
	level core.Level
}

func parseExpect(s string) ([]expectation, error) {
	var out []expectation
	for _, pair := range strings.Split(s, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		name, lvl, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad -expect entry %q (want name=L1|L2|L3)", pair)
		}
		var level core.Level
		switch lvl {
		case "L1":
			level = core.L1
		case "L2":
			level = core.L2
		case "L3":
			level = core.L3
		default:
			return nil, fmt.Errorf("bad level %q in -expect", lvl)
		}
		out = append(out, expectation{name: name, id: cert.IDFromName(name), level: level})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

func nameOf(want []expectation, id cert.ID) string {
	for _, w := range want {
		if w.id == id {
			return w.name
		}
	}
	return fmt.Sprintf("%x", id[:4])
}

func satisfied(want []expectation, best map[cert.ID]core.Discovery) bool {
	return met(want, best) == len(want)
}

func met(want []expectation, best map[cert.ID]core.Discovery) (n int) {
	for _, w := range want {
		if r, ok := best[w.id]; ok && r.Level >= w.level {
			n++
		}
	}
	return n
}
