package main

import (
	"fmt"
	"strings"
	"time"

	"argus/internal/backendsvc"
	"argus/internal/cert"
	"argus/internal/transport"
	"argus/internal/transport/transporttest"
	"argus/internal/update"
)

// gwTarget is one update destination the gateway pushes to.
type gwTarget struct {
	name string
	id   cert.ID
	addr transport.Addr
}

// runGateway hosts the update plane's distribution side as a daemon: a
// Distributor over UDP pushing signed notifications to a fixed target set.
// -reprovision-every drives a periodic push; -offline parks the named
// targets' copies in the per-destination dead-letter queue, and
// -reattach-after (or graceful shutdown) reattaches them so the backlog
// redelivers in order. SIGTERM/SIGINT stops the pushes, drains every queue,
// flushes the obs plane, and exits 0 — the DLQ depth gauge reads zero in the
// final snapshot or the exit is an error.
//
// -dlq-log makes the dead-letter queue durable: every park, eviction and
// drain is journaled (fsynced) to the named file, and on startup the journal
// is folded back — restored destinations start offline with their backlog
// intact, and the usual reattach paths redeliver it.
func runGateway(snapshot, targets, offline, dlqLog string, every, reattachAfter, duration time.Duration, op *obsPlane) error {
	if targets == "" {
		return fmt.Errorf("-role gateway needs -targets")
	}
	b, err := restore(snapshot)
	if err != nil {
		return err
	}
	var tgts []gwTarget
	var peerAddrs []string
	for _, pair := range strings.Split(targets, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || addr == "" {
			return fmt.Errorf("bad -targets entry %q (want name=host:port)", pair)
		}
		tgts = append(tgts, gwTarget{name: name, id: cert.IDFromName(name), addr: transport.Addr(addr)})
		peerAddrs = append(peerAddrs, addr)
	}
	ep, err := transport.ListenUDP(transport.UDPConfig{
		Listen: "127.0.0.1:0", Peers: peerAddrs, Registry: op.reg,
	})
	if err != nil {
		return err
	}
	defer ep.Close()
	ep.Bind(transport.HandlerFunc(func(transport.Addr, []byte) {})) // drain strays

	var distOpts []update.DistributorOption
	var restored map[cert.ID][]*update.Notification
	if dlqLog != "" {
		jl, parked, err := backendsvc.OpenDLQLog(dlqLog)
		if err != nil {
			return fmt.Errorf("-dlq-log: %w", err)
		}
		defer jl.Close()
		distOpts = append(distOpts, update.WithDLQJournal(jl))
		restored = parked
	}
	dist := update.NewDistributor(b.Admin(), ep, distOpts...)
	dist.Instrument(op.reg)
	ids := make([]cert.ID, 0, len(tgts))
	for _, t := range tgts {
		dist.Register(t.id, t.addr)
		ids = append(ids, t.id)
	}
	down := map[string]bool{}
	for _, n := range strings.Split(offline, ",") {
		if n = strings.TrimSpace(n); n != "" {
			down[n] = true
		}
	}
	if len(restored) > 0 {
		dist.RestoreParked(restored)
		// Restored destinations are offline until reattached; fold them into
		// the -offline set so the reattach paths drain their backlog too.
		n := 0
		for _, t := range tgts {
			if q := restored[t.id]; len(q) > 0 {
				down[t.name] = true
				n += len(q)
			}
		}
		fmt.Printf("dlq-log restored=%d depth=%d\n", n, dist.DLQDepth())
	}
	for _, t := range tgts {
		if down[t.name] {
			dist.MarkOffline(t.id)
		}
	}
	// Trap before announcing readiness: a harness that synchronizes on the
	// line below may signal immediately (see trapStop in main.go).
	stop, release := trapStop()
	defer release()
	fmt.Printf("gateway targets=%d offline=%d\n", len(tgts), len(down))
	var tick <-chan time.Time
	if every > 0 {
		tk := time.NewTicker(every)
		defer tk.Stop()
		tick = tk.C
	}
	var reattach <-chan time.Time
	if reattachAfter > 0 && len(down) > 0 {
		reattach = time.After(reattachAfter)
	}
	var timeUp <-chan time.Time
	if duration > 0 {
		timeUp = time.After(duration)
	}

	doReattach := func() {
		for _, t := range tgts {
			if !down[t.name] {
				continue
			}
			n := dist.Reattach(t.id, t.addr)
			down[t.name] = false
			fmt.Printf("reattached name=%s redelivered=%d\n", t.name, n)
		}
	}

loop:
	for {
		select {
		case <-tick:
			if err := dist.Reprovision(ids); err != nil {
				return err
			}
			fmt.Printf("pushed kind=reprovision targets=%d parked=%d\n", len(ids), dist.DLQDepth())
		case <-reattach:
			doReattach()
		case <-timeUp:
			break loop
		case <-stop:
			break loop
		}
	}

	// Graceful drain: reattach anything still offline so its backlog
	// redelivers, then hold the exit until the queues report empty.
	doReattach()
	if !transporttest.Poll(10*time.Second, transporttest.DefaultStep, func() bool {
		return dist.DLQDepth() == 0
	}) {
		op.flush()
		return fmt.Errorf("dead-letter queue not drained: depth %d", dist.DLQDepth())
	}
	fmt.Printf("drained depth=0 redelivered=%d\n", dist.Redelivered())
	return op.flush()
}
