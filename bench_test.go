// Package argus's root benchmark suite: one benchmark per table/figure of
// the paper's evaluation, so `go test -bench=. -benchmem` regenerates the
// measured side of every experiment. The printable paper-style tables come
// from `argus-bench -exp all`.
//
//	Table I  → BenchmarkTable1*
//	§IX-A    → BenchmarkMessage*
//	Fig 6a   → BenchmarkECDSA*, BenchmarkECDH*
//	Fig 6b   → BenchmarkCompute*
//	Fig 6c   → BenchmarkABEDecrypt*
//	Fig 6d   → BenchmarkPairing, BenchmarkPBCHandshake
//	Fig 6e   → BenchmarkDiscoverySingleHop*
//	Fig 6g/h → BenchmarkDiscoveryMultiHop*
package argus

import (
	"fmt"
	"testing"

	"argus/internal/abe"
	"argus/internal/acl"
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/exp"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/pairing"
	"argus/internal/pbc"
	"argus/internal/suite"
	"argus/internal/wire"
)

// benchSeed is the base seed for every randomized fixture below. Benchmarks
// must be deterministic run-to-run so regressions are attributable to code,
// not fixtures: simulator deployments derive their seed from benchSeed and
// the iteration index, never from time or global rand.
const benchSeed int64 = 1

// --- Table I: churn operations ---

// BenchmarkTable1ArgusRevocation measures a real backend revocation with
// N=200 accessible objects (the paper's Table I row: overhead N).
func BenchmarkTable1ArgusRevocation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bk, err := backend.New(suite.S128)
		if err != nil {
			b.Fatal(err)
		}
		sid, _, _ := bk.RegisterSubject("alice", attr.MustSet("position=staff"))
		for j := 0; j < 200; j++ {
			bk.RegisterObject(fmt.Sprintf("o%03d", j), backend.L2, attr.MustSet("type=lock"), []string{"open"})
		}
		bk.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='lock'"), []string{"open"})
		b.StartTimer()
		rep, err := bk.RevokeSubject(sid)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.NotifiedObjects) != 200 {
			b.Fatalf("notified %d", len(rep.NotifiedObjects))
		}
	}
}

// BenchmarkTable1IDACLRevocation measures the ID-ACL baseline at the same N.
func BenchmarkTable1IDACLRevocation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := acl.New()
		objs := make([]string, 200)
		for j := range objs {
			objs[j] = fmt.Sprintf("o%03d", j)
			s.AddObject(objs[j])
		}
		s.GrantAccess("alice", objs)
		b.StartTimer()
		if got := len(s.RevokeSubject("alice")); got != 200 {
			b.Fatalf("notified %d", got)
		}
	}
}

// BenchmarkTable1ArgusAddSubject measures adding a subject (overhead 1).
func BenchmarkTable1ArgusAddSubject(b *testing.B) {
	bk, err := backend.New(suite.S128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bk.RegisterSubject(fmt.Sprintf("s%08d", i), attr.MustSet("position=staff")); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IX-A: message overhead (codec throughput at the paper's sizes) ---

func BenchmarkMessageEncodeQUE2(b *testing.B) {
	m := &wire.QUE2{
		Version: wire.V30,
		RS:      make([]byte, suite.NonceSize),
		ProfS:   make([]byte, 200),
		CertS:   make([]byte, 565),
		KEXMS:   make([]byte, 64),
		Sig:     make([]byte, 64),
		MACS2:   make([]byte, 32),
		MACS3:   make([]byte, 32),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(m.Encode()) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkMessageDecodeQUE2(b *testing.B) {
	m := &wire.QUE2{
		Version: wire.V30,
		RS:      make([]byte, suite.NonceSize),
		ProfS:   make([]byte, 200),
		CertS:   make([]byte, 565),
		KEXMS:   make([]byte, 64),
		Sig:     make([]byte, 64),
		MACS2:   make([]byte, 32),
		MACS3:   make([]byte, 32),
	}
	enc := m.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 6a: ECDSA/ECDH per security strength ---

func benchSign(b *testing.B, s suite.Strength) {
	key, err := suite.GenerateSigningKey(s, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVerify(b *testing.B, s suite.Strength) {
	key, _ := suite.GenerateSigningKey(s, nil)
	msg := make([]byte, 256)
	sig, _ := key.Sign(msg)
	pub := key.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func benchECDH(b *testing.B, s suite.Strength) {
	peer, _ := suite.NewKeyExchange(s, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kex, err := suite.NewKeyExchange(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kex.Shared(peer.Public()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSASign(b *testing.B) {
	for _, s := range suite.Strengths {
		b.Run(s.String(), func(b *testing.B) { benchSign(b, s) })
	}
}

func BenchmarkECDSAVerify(b *testing.B) {
	for _, s := range suite.Strengths {
		b.Run(s.String(), func(b *testing.B) { benchVerify(b, s) })
	}
}

func BenchmarkECDHExchange(b *testing.B) {
	for _, s := range suite.Strengths {
		b.Run(s.String(), func(b *testing.B) { benchECDH(b, s) })
	}
}

// --- Fig 6b: per-discovery computation (the real operation sequences) ---

// BenchmarkComputeLevel1Subject is the subject's Level 1 work: one PROF
// verification.
func BenchmarkComputeLevel1Subject(b *testing.B) {
	benchVerify(b, suite.S128)
}

// BenchmarkComputeLevel23Subject runs the subject's Level 2/3 sequence:
// 1 sign + 3 verify + 2 ECDH + key schedule.
func BenchmarkComputeLevel23Subject(b *testing.B) {
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	msg := make([]byte, 512)
	sig, _ := key.Sign(msg)
	pub := key.Public()
	peer, _ := suite.NewKeyExchange(suite.S128, nil)
	rs := make([]byte, suite.NonceSize)
	ro := make([]byte, suite.NonceSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 3; v++ {
			if !pub.Verify(msg, sig) {
				b.Fatal("verify")
			}
		}
		kex, _ := suite.NewKeyExchange(suite.S128, nil)
		preK, _ := kex.Shared(peer.Public())
		k2 := suite.SessionKey2(preK, rs, ro)
		_ = suite.SessionKey3(k2, k2, rs, ro)
		if _, err := key.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 6c: ABE decryption vs attribute count ---

func BenchmarkABEDecrypt(b *testing.B) {
	pk, mk, err := abe.Setup()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("attrs=%d", k), func(b *testing.B) {
			attrs := make([]string, k)
			leaves := make([]*abe.Policy, k)
			for i := range attrs {
				attrs[i] = fmt.Sprintf("a%d:v", i)
				leaves[i] = abe.Leaf(attrs[i])
			}
			var policy *abe.Policy
			if k == 1 {
				policy = leaves[0]
			} else {
				policy = abe.And(leaves...)
			}
			sk, _ := abe.KeyGen(pk, mk, attrs)
			ct, key, err := abe.Encrypt(pk, policy)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := abe.Decrypt(pk, sk, ct)
				if err != nil || got != key {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 6d: PBC pairing per handshake side ---

func BenchmarkPairing(b *testing.B) {
	p, q := pairing.G1Generator(), pairing.G2Generator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pairing.Pair(p, q).IsOne() {
			b.Fatal("degenerate")
		}
	}
}

func BenchmarkPBCHandshakeSide(b *testing.B) {
	auth, err := pbc.NewAuthority()
	if err != nil {
		b.Fatal(err)
	}
	subj := auth.Issue("subject")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj.PairwiseKey("object")
	}
}

// BenchmarkArgusLevel3Extra is the comparison point for Fig 6d: the entire
// Level 3 increment over Level 2 is two HMAC computations.
func BenchmarkArgusLevel3Extra(b *testing.B) {
	k2 := make([]byte, suite.KeySize)
	grp := make([]byte, suite.KeySize)
	rs := make([]byte, suite.NonceSize)
	ro := make([]byte, suite.NonceSize)
	var h [32]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k3 := suite.SessionKey3(k2, grp, rs, ro)
		suite.FinishedMAC(k3, suite.LabelSubjectFinished, h)
	}
}

// --- Fig 6e/6g: full discovery rounds on the simulated testbed ---

func benchDiscovery(b *testing.B, level backend.Level, n int, multihop bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := exp.DeployConfig{
			Levels:       make([]backend.Level, n),
			SubjectCosts: exp.PhoneCosts(),
			ObjectCosts:  exp.PiCosts(),
			Fellow:       true,
			Seed:         benchSeed + int64(i),
		}
		for j := range cfg.Levels {
			cfg.Levels[j] = level
		}
		ttl := 1
		if multihop {
			hops := make([]int, n)
			for j := range hops {
				hops[j] = 1 + j/5
			}
			cfg.HopOf = hops
			ttl = 4
		}
		d, err := exp.Deploy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := d.Run(ttl)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != n {
			b.Fatalf("discovered %d/%d", len(res), n)
		}
	}
}

func BenchmarkDiscoverySingleHop(b *testing.B) {
	for _, level := range []backend.Level{backend.L1, backend.L2, backend.L3} {
		b.Run(fmt.Sprintf("%v-20obj", level), func(b *testing.B) {
			benchDiscovery(b, level, 20, false)
		})
	}
}

func BenchmarkDiscoveryMultiHop(b *testing.B) {
	for _, level := range []backend.Level{backend.L1, backend.L3} {
		b.Run(fmt.Sprintf("%v-20obj-4hop", level), func(b *testing.B) {
			benchDiscovery(b, level, 20, true)
		})
	}
}

// BenchmarkDiscoverV3 runs a full mixed-level v3.0 discovery round with
// telemetry detached and attached. The two sub-benchmarks bound the
// instrumentation overhead on the hottest end-to-end path (target: <2%).
func BenchmarkDiscoverV3(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		name := "telemetry=off"
		if instrumented {
			name = "telemetry=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := exp.DeployConfig{
					Levels: []backend.Level{
						backend.L1, backend.L2, backend.L3, backend.L1, backend.L2,
						backend.L3, backend.L1, backend.L2, backend.L3, backend.L1,
						backend.L2, backend.L3, backend.L1, backend.L2, backend.L3,
						backend.L1, backend.L2, backend.L3, backend.L1, backend.L2,
					},
					Version:      wire.V30,
					SubjectCosts: exp.PhoneCosts(),
					ObjectCosts:  exp.PiCosts(),
					Fellow:       true,
					Seed:         benchSeed + int64(i),
				}
				if instrumented {
					cfg.Registry = obs.NewRegistry()
					cfg.Tracer = obs.NewTracer()
				}
				d, err := exp.Deploy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := d.Run(1)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(cfg.Levels) {
					b.Fatalf("discovered %d/%d", len(res), len(cfg.Levels))
				}
			}
		})
	}
}

// --- supporting micro-benchmarks ---

// BenchmarkABEEncrypt measures backend-side ciphertext preparation (the cost
// the paper notes "can be generated beforehand").
func BenchmarkABEEncrypt(b *testing.B) {
	pk, _, err := abe.Setup()
	if err != nil {
		b.Fatal(err)
	}
	policy := abe.And(abe.Leaf("a:1"), abe.Leaf("b:2"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := abe.Encrypt(pk, policy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABEKeyGen measures per-subject key issuance (2 attributes).
func BenchmarkABEKeyGen(b *testing.B) {
	pk, mk, err := abe.Setup()
	if err != nil {
		b.Fatal(err)
	}
	attrs := []string{"a:1", "b:2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abe.KeyGen(pk, mk, attrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashToG1 and BenchmarkHashToG2 measure attribute hashing (one per
// ABE attribute / PBC identity).
func BenchmarkHashToG1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairing.HashToG1([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
}

func BenchmarkHashToG2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairing.HashToG2([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
}

// BenchmarkProfileCipher measures the AES-CBC+HMAC profile encryption of a
// 200 B PROF (sub-millisecond per §IX-B).
func BenchmarkProfileCipher(b *testing.B) {
	key := make([]byte, suite.KeySize)
	plain := make([]byte, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ct, err := suite.EncryptProfile(key, plain, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := suite.DecryptProfile(key, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredicateEval measures policy evaluation at the object (per QUE2,
// per variant).
func BenchmarkPredicateEval(b *testing.B) {
	p := attr.MustParse("position=='manager' && (department=='X' || department=='Y') && has(badge)")
	s := attr.MustSet("position=manager,department=Y,badge=77")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Eval(s) {
			b.Fatal("eval failed")
		}
	}
}

// BenchmarkProvisionObject measures backend provisioning of a Level 3 object
// with one policy variant and one group variant (PROF compilation + padding
// + two admin signatures).
func BenchmarkProvisionObject(b *testing.B) {
	bk, err := backend.New(suite.S128)
	if err != nil {
		b.Fatal(err)
	}
	bk.AddPolicy(attr.MustParse("position=='staff'"), attr.MustParse("type=='kiosk'"), []string{"use"})
	g, _ := bk.Groups.CreateGroup("grp")
	oid, _, _ := bk.RegisterObject("kiosk", backend.L3, attr.MustSet("type=kiosk"), []string{"use"})
	bk.AddCovertService(oid, g.ID(), []string{"use", "covert"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bk.ProvisionObject(oid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverAllMultiGroup measures the §VI-C key-rotation cost: a
// subject in 3 secret groups running 3 discovery rounds against 3 covert
// objects.
func BenchmarkDiscoverAllMultiGroup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bk, err := backend.New(suite.S128)
		if err != nil {
			b.Fatal(err)
		}
		sid, _, _ := bk.RegisterSubject("multi", attr.MustSet("position=staff"))
		nt := netsim.New(netsim.DefaultWiFi(), benchSeed+int64(i))
		var sn netsim.NodeID
		sprovDeferred := func() *core.Subject {
			prov, err := bk.ProvisionSubject(sid)
			if err != nil {
				b.Fatal(err)
			}
			sep := nt.NewEndpoint()
			sn = sep.Node()
			return core.NewSubject(prov, wire.V30, core.Costs{}, core.WithEndpoint(sep))
		}
		for g := 0; g < 3; g++ {
			grp, _ := bk.Groups.CreateGroup(fmt.Sprintf("g%d", g))
			bk.AddSubjectToGroup(sid, grp.ID())
			oid, _, _ := bk.RegisterObject(fmt.Sprintf("covert-%d", g), backend.L3,
				attr.MustSet("type=kiosk"), []string{"use"})
			bk.AddCovertService(oid, grp.ID(), []string{"use", "covert"})
		}
		subj := sprovDeferred()
		for _, oid := range bk.Objects() {
			prov, err := bk.ProvisionObject(oid)
			if err != nil {
				b.Fatal(err)
			}
			oep := nt.NewEndpoint()
			core.NewObject(prov, wire.V30, core.Costs{}, core.WithEndpoint(oep))
			nt.Link(sn, oep.Node())
		}
		b.StartTimer()
		if err := subj.DiscoverAll(1, func() { nt.Run(0) }); err != nil {
			b.Fatal(err)
		}
		covert := 0
		for _, r := range subj.Results() {
			if r.Level == backend.L3 {
				covert++
			}
		}
		if covert != 3 {
			b.Fatalf("found %d covert services", covert)
		}
	}
}

// BenchmarkVerifyCertChain measures hierarchical CERT verification (leaf +
// one intermediate) against the root anchor.
func BenchmarkVerifyCertChain(b *testing.B) {
	root, err := cert.NewAdmin(suite.S128, "root")
	if err != nil {
		b.Fatal(err)
	}
	sub, err := root.NewSubordinate("building")
	if err != nil {
		b.Fatal(err)
	}
	key, _ := suite.GenerateSigningKey(suite.S128, nil)
	chain, err := sub.IssueCertChain(cert.IDFromName("e"), "e", cert.RoleObject, key.Public())
	if err != nil {
		b.Fatal(err)
	}
	anchor := root.CACert()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cert.VerifyCert(anchor, chain, suite.S128); err != nil {
			b.Fatal(err)
		}
	}
}
