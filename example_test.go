package argus_test

import (
	"fmt"

	"argus"
)

// Example demonstrates the minimal three-level deployment: a Level 1
// thermometer everyone sees, a Level 2 printer scoped to staff, and a
// Level 3 kiosk whose covert face only secret-group fellows discover.
func Example() {
	b, _ := argus.NewBackend(argus.Strength128)
	b.AddPolicy(argus.MustPredicate("position=='staff'"),
		argus.MustPredicate("type=='printer'"), []string{"print"})
	grp, _ := b.Groups.CreateGroup("support program")

	alice, _, _ := b.RegisterSubject("alice", argus.MustAttrs("position=staff"))
	b.AddSubjectToGroup(alice, grp.ID())
	thermo, _, _ := b.RegisterObject("thermometer", argus.L1,
		argus.MustAttrs("type=thermometer"), []string{"read"})
	printer, _, _ := b.RegisterObject("printer", argus.L2,
		argus.MustAttrs("type=printer"), []string{"print", "admin"})
	kiosk, _, _ := b.RegisterObject("kiosk", argus.L3,
		argus.MustAttrs("type=kiosk"), []string{"browse"})
	b.AddCovertService(kiosk, grp.ID(), []string{"browse", "support"})

	net := argus.NewNetwork(argus.DefaultWiFi(), 1)
	subject, home, _ := argus.AttachSubject(b, net, alice, argus.V30, argus.Costs{})
	for _, id := range []argus.ID{thermo, printer, kiosk} {
		_, node, _ := argus.AttachObject(b, net, id, argus.V30, argus.Costs{})
		net.Link(home, node)
	}

	subject.Discover(1)
	net.Run(0)
	for _, d := range subject.Results() {
		fmt.Println(d.Level, d.Profile.Functions)
	}
	// Output:
	// Level 1 [read]
	// Level 2 [print]
	// Level 3 [browse support]
}

// ExampleBackend_RevokeSubject shows enterprise churn: revocation notifies
// exactly the N objects the subject could access (Table I), after which her
// discovery attempts are refused.
func ExampleBackend_RevokeSubject() {
	b, _ := argus.NewBackend(argus.Strength128)
	b.AddPolicy(argus.MustPredicate("position=='staff'"),
		argus.MustPredicate("type=='lock'"), []string{"open"})
	alice, _, _ := b.RegisterSubject("alice", argus.MustAttrs("position=staff"))
	for i := 0; i < 3; i++ {
		b.RegisterObject(fmt.Sprintf("lock-%d", i), argus.L2,
			argus.MustAttrs("type=lock"), []string{"open"})
	}

	report, _ := b.RevokeSubject(alice)
	fmt.Println("objects notified:", len(report.NotifiedObjects))
	// Output:
	// objects notified: 3
}

// ExampleParsePredicate shows the policy language used throughout the
// backend (§II-B of the paper).
func ExampleParsePredicate() {
	p, _ := argus.ParsePredicate("position=='manager' && department=='X'")
	manager := argus.MustAttrs("position=manager,department=X")
	visitor := argus.MustAttrs("position=visitor")
	fmt.Println(p.Eval(manager), p.Eval(visitor))
	// Output:
	// true false
}
