// Package argus is the public API of the Argus multi-level service-visibility
// system (Zhou, Pandey, Ye — IPPS 2020): distributed, proximity-based IoT
// service discovery with three concurrent visibility levels.
//
//   - Level 1 (public): services identically visible to everyone.
//   - Level 2 (differentiated): visibility scoped by the subject's
//     non-sensitive attributes through backend policies.
//   - Level 3 (covert): visibility scoped by sensitive attributes via secret
//     groups, indistinguishable on the wire from Level 2.
//
// A minimal deployment:
//
//	b, _ := argus.NewBackend(argus.Strength128)
//	b.AddPolicy(argus.MustPredicate("position=='staff'"),
//	            argus.MustPredicate("type=='printer'"), []string{"print"})
//	alice, _, _ := b.RegisterSubject("alice", argus.MustAttrs("position=staff"))
//	printer, _, _ := b.RegisterObject("printer", argus.L2,
//	            argus.MustAttrs("type=printer"), []string{"print", "admin"})
//
//	net := argus.NewNetwork(argus.DefaultWiFi(), 1)
//	subject, node, _ := argus.AttachSubject(b, net, alice, argus.V30, argus.Costs{})
//	_, pnode, _ := argus.AttachObject(b, net, printer, argus.V30, argus.Costs{})
//	net.Link(node, pnode)
//	subject.Discover(1)
//	net.Run(0)
//	for _, d := range subject.Results() { fmt.Println(d.Level, d.Profile.Functions) }
//
// Engines are transport-agnostic: they speak the transport.Endpoint seam
// (re-exported here as Endpoint/Addr), so the same Subject and Object run
// unchanged over the deterministic simulator above, the concurrent in-memory
// Mesh (NewMesh), a real UDP socket (ListenUDP), or any custom transport.
//
// The facade re-exports the stable surface of the internal packages; see
// internal/core for the protocol engines, internal/backend for policy and
// provisioning, internal/netsim for the ground-network simulator,
// internal/transport for the concurrent transports, and internal/exp for the
// paper's experiment harness.
package argus

import (
	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/obs"
	"argus/internal/suite"
	"argus/internal/transport"
	"argus/internal/wire"
)

// Security strengths (§IX-B): the paper's four evaluation points.
const (
	Strength112 = suite.S112
	Strength128 = suite.S128 // the paper's default
	Strength192 = suite.S192
	Strength256 = suite.S256
)

// Visibility levels (§IV-A).
const (
	L1 = backend.L1
	L2 = backend.L2
	L3 = backend.L3
)

// Protocol versions (Figs 3–5). V30 is the full system; V10/V20 exist to
// demonstrate what each design iteration fixes.
const (
	V10 = wire.V10
	V20 = wire.V20
	V30 = wire.V30
)

// Re-exported core types.
type (
	// Backend is the enterprise registration/policy authority (§IV-A).
	Backend = backend.Backend
	// Level is an object's secrecy level.
	Level = backend.Level
	// UpdateReport counts the ground entities affected by a churn operation.
	UpdateReport = backend.UpdateReport
	// Subject is the subject-side (user device) discovery engine.
	Subject = core.Subject
	// Object is the object-side (IoT device) discovery engine.
	Object = core.Object
	// Discovery is one verified discovery result.
	Discovery = core.Discovery
	// Costs models per-operation computation time on a device class.
	Costs = core.Costs
	// Network is the simulated ground network.
	Network = netsim.Network
	// NodeID addresses a node on the ground network.
	NodeID = netsim.NodeID
	// LinkModel parameterizes radio transmissions.
	LinkModel = netsim.LinkModel
	// Addr is a transport-neutral node address (Discovery.Node). Under the
	// simulator it is the node ID in decimal; under UDP it is host:port.
	Addr = transport.Addr
	// Endpoint is the transport seam the engines speak; bind engines to one
	// with WithEndpoint or engine.Bind.
	Endpoint = transport.Endpoint
	// Mesh is the concurrent in-memory transport (one actor goroutine per
	// endpoint, bounded mailboxes).
	Mesh = transport.Mesh
	// UDPConfig configures a real UDP endpoint for ListenUDP.
	UDPConfig = transport.UDPConfig
	// UDPEndpoint runs the Endpoint contract over one UDP socket.
	UDPEndpoint = transport.UDPEndpoint
	// ID identifies a registered subject or object.
	ID = cert.ID
	// Attrs is a set of (non-sensitive) attributes.
	Attrs = attr.Set
	// Predicate is a parsed policy expression over attributes.
	Predicate = attr.Predicate
	// Version selects the protocol iteration.
	Version = wire.Version
	// Strength is a security strength in bits.
	Strength = suite.Strength
	// Option configures a Subject or Object engine at construction; pass
	// options to AttachSubject/AttachObject. See WithRetry, WithTelemetry,
	// WithVerifyCache.
	Option = core.Option
	// RetryPolicy governs retransmission and session expiry on lossy links.
	RetryPolicy = core.RetryPolicy
	// VerifyCache memoizes credential verification across handshakes; share
	// one via WithVerifyCache so repeat encounters skip ECDSA re-verification.
	VerifyCache = cert.VerifyCache
	// Registry collects deployment metrics (pass to WithTelemetry).
	Registry = obs.Registry
	// Tracer records per-phase discovery spans on a subject.
	Tracer = obs.Tracer
)

// NewBackend creates an enterprise backend at the given strength.
func NewBackend(s Strength) (*Backend, error) { return backend.New(s) }

// NewNetwork creates a deterministic simulated ground network.
func NewNetwork(model LinkModel, seed int64) *Network { return netsim.New(model, seed) }

// DefaultWiFi returns the link model calibrated to the paper's testbed.
func DefaultWiFi() LinkModel { return netsim.DefaultWiFi() }

// ParsePredicate parses a policy expression such as
// "position=='manager' && department=='X'".
func ParsePredicate(text string) (*Predicate, error) { return attr.Parse(text) }

// MustPredicate is ParsePredicate that panics on error.
func MustPredicate(text string) *Predicate { return attr.MustParse(text) }

// ParseAttrs parses an attribute set such as "position=staff,department=X".
func ParseAttrs(text string) (Attrs, error) { return attr.ParseSet(text) }

// MustAttrs is ParseAttrs that panics on error.
func MustAttrs(text string) Attrs { return attr.MustSet(text) }

// DefaultRetry returns the retransmission policy tuned for the paper's WiFi
// link model (pass it to WithRetry on lossy deployments).
func DefaultRetry() RetryPolicy { return core.DefaultRetry() }

// NewRegistry creates an empty metrics registry for WithTelemetry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer creates a discovery span tracer for WithTelemetry.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewVerifyCache creates a bounded credential-verification cache holding up
// to capacity entries (0 selects a sensible default). Share one cache across
// engines via WithVerifyCache: a peer any engine has verified before costs
// zero ECDSA credential verifications on the next encounter. The cache saves
// real CPU only — fixed-seed simulation results are identical with and
// without it.
func NewVerifyCache(capacity int) *VerifyCache { return cert.NewVerifyCache(capacity) }

// WithRetry installs a retransmission policy on the engine.
func WithRetry(p RetryPolicy) Option { return core.WithRetry(p) }

// WithTelemetry instruments the engine under reg; tr (optional, subjects
// only) records per-phase discovery spans.
func WithTelemetry(reg *Registry, tr *Tracer) Option { return core.WithTelemetry(reg, tr) }

// WithVerifyCache shares a credential-verification cache with the engine.
func WithVerifyCache(c *VerifyCache) Option { return core.WithVerifyCache(c) }

// WithEndpoint binds the engine to a transport endpoint at construction.
// AttachSubject/AttachObject apply it automatically for simulator nodes; use
// it directly with NewMesh or ListenUDP endpoints.
func WithEndpoint(ep Endpoint) Option { return core.WithEndpoint(ep) }

// NewMesh creates a concurrent in-memory transport: Join() returns endpoints
// that deliver to each other through per-endpoint actor mailboxes, suitable
// for running many engines across real goroutines in one process.
func NewMesh(opts ...transport.MeshOption) *Mesh { return transport.NewMesh(opts...) }

// ListenUDP binds a real UDP socket as a transport endpoint; Broadcast is
// emulated as one datagram per configured peer.
func ListenUDP(cfg UDPConfig) (*UDPEndpoint, error) { return transport.ListenUDP(cfg) }

// NodeAddr converts a simulator node ID to its transport address — the form
// Discovery.Node takes under the simulator.
func NodeAddr(id NodeID) Addr { return netsim.AddrOf(id) }

// AttachSubject provisions a registered subject from the backend, creates its
// discovery engine and places it on the network. Returns the engine and its
// node address (link it to nearby objects). Options configure retry,
// telemetry and verification caching; the node address is set automatically.
func AttachSubject(b *Backend, net *Network, id ID, v Version, costs Costs, opts ...Option) (*Subject, NodeID, error) {
	prov, err := b.ProvisionSubject(id)
	if err != nil {
		return nil, 0, err
	}
	ep := net.NewEndpoint()
	s := core.NewSubject(prov, v, costs, append(opts, core.WithEndpoint(ep))...)
	return s, ep.Node(), nil
}

// AttachObject provisions a registered object and places its engine on the
// network, applying the same option set AttachSubject accepts.
func AttachObject(b *Backend, net *Network, id ID, v Version, costs Costs, opts ...Option) (*Object, NodeID, error) {
	prov, err := b.ProvisionObject(id)
	if err != nil {
		return nil, 0, err
	}
	ep := net.NewEndpoint()
	o := core.NewObject(prov, v, costs, append(opts, core.WithEndpoint(ep))...)
	return o, ep.Node(), nil
}

// RefreshSubject re-provisions a live subject engine after backend churn
// (attribute change, group re-key).
func RefreshSubject(b *Backend, s *Subject) error {
	prov, err := b.ProvisionSubject(s.ID())
	if err != nil {
		return err
	}
	s.Refresh(prov)
	return nil
}

// RefreshObject re-provisions a live object engine after backend churn
// (policy change, revocation notice, group re-key).
func RefreshObject(b *Backend, o *Object) error {
	prov, err := b.ProvisionObject(o.ID())
	if err != nil {
		return err
	}
	o.Refresh(prov)
	return nil
}

// SnapshotBackend serializes the complete backend state (including private
// keys) for durable storage; RestoreBackend reconstructs it. The restored
// backend issues credentials chained to the same admin key.
func SnapshotBackend(b *Backend) []byte { return b.Snapshot() }

// RestoreBackend reconstructs a backend from a SnapshotBackend blob.
func RestoreBackend(blob []byte) (*Backend, error) { return backend.Restore(blob) }
