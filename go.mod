module argus

go 1.24
