#!/bin/sh
# End-to-end ops-plane smoke: a real argus-load soak serving its obs plane,
# a real argus-ops attached to it. Passes only when
#
#   1. argus-load announces its obs listener and runs the ci-soak profile
#      to an SLO pass, and
#   2. argus-ops, tailing that live endpoint with the same profile's gates,
#      sees both a snapshot and a span frame before the run ends.
#
# This is the CI ops-smoke job; run it locally with `make ops-smoke`.
set -eu

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
LOAD_PID=""
cleanup() {
	[ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/argus-load" ./cmd/argus-load
go build -o "$TMP/argus-ops" ./cmd/argus-ops

"$TMP/argus-load" -profile ci-soak -obs 127.0.0.1:0 -out "$TMP/report.json" \
	2>"$TMP/load.log" &
LOAD_PID=$!

# The load harness prints "obs listening addr=<host:port>" before the fleet
# comes up; poll the log for it.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/^obs listening addr=//p' "$TMP/load.log" | head -n 1)
	[ -n "$ADDR" ] && break
	if ! kill -0 "$LOAD_PID" 2>/dev/null; then
		echo "ops smoke: argus-load died before announcing its obs plane" >&2
		cat "$TMP/load.log" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "ops smoke: argus-load never announced its obs plane" >&2
	cat "$TMP/load.log" >&2
	exit 1
fi

"$TMP/argus-ops" -attach "$ADDR" -profile ci-soak -await snapshot,span -for 90s

wait "$LOAD_PID" || {
	echo "ops smoke: argus-load failed its SLO" >&2
	cat "$TMP/load.log" >&2
	exit 1
}
LOAD_PID=""
echo "ops smoke: PASS"
