#!/bin/sh
# End-to-end capacity-search smoke: a tiny fleet sharded across two real
# argus-node shard processes, driven by `argus-load -capacity -procs 2`.
# Passes only when
#
#   1. the coordinator launches both shards, completes the cross-process
#      warm sweep, and the search exits 0 (some rate sustained), and
#   2. the emitted JSON carries a non-zero knee — i.e. the merged
#      multi-process SLO verdict passed at least one offered rate.
#
# The tolerance is deliberately coarse (-cap-tol 0.5) and the windows short:
# this is a wiring check for the coordinator/shard/merge pipeline, not a
# benchmark — BENCH_10.json is where the real knees live.
#
# This is the CI capacity-smoke job; run it locally with `make capacity-smoke`.
set -eu

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
cleanup() {
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/argus-load" ./cmd/argus-load
go build -o "$TMP/argus-node" ./cmd/argus-node

"$TMP/argus-load" -capacity -procs 2 -node-bin "$TMP/argus-node" \
	-profile ci-soak -cells 2 -subjects 2 -objects 2 \
	-cap-start 25 -cap-tol 0.5 -cap-trials 4 -cap-duration 1s \
	-out "$TMP/capacity.json" 2>"$TMP/load.log" || {
	echo "capacity smoke: search failed" >&2
	cat "$TMP/load.log" >&2
	exit 1
}

KNEE=$(sed -n 's/^ *"knee_sessions_per_second": \([0-9.]*\).*/\1/p' "$TMP/capacity.json" | head -n 1)
if [ -z "$KNEE" ] || [ "$KNEE" = "0" ]; then
	echo "capacity smoke: no knee in the report (got '$KNEE')" >&2
	cat "$TMP/capacity.json" >&2
	exit 1
fi
echo "capacity smoke: PASS (knee $KNEE sessions/s across 2 processes)"
