#!/usr/bin/env bash
# check_bench.sh — gate the hot-path allocation ceilings (ISSUE 9).
#
# Runs the wire codec and warm-handshake microbenchmarks and fails if any
# allocs/op figure exceeds its committed ceiling, so the zero-alloc codec
# seam can never silently regress. Throughput ceilings are gated separately,
# at runtime, by the load profiles' SLO blocks (retransmissions, latency,
# lost sessions) — allocation is the only axis a microbenchmark measures
# deterministically on shared CI hardware.
#
# Ceilings (see BENCH_9.json for the measured values they bound):
#   AppendToQUE2    0 allocs/op  — the zero-alloc append path, exactly zero
#   EncodeQUE2      1 alloc/op   — thin wrapper: one buffer per Encode
#   DecodeQUE2      8 allocs/op  — decode-from-borrowed-slice
#   WarmHandshake 500 allocs/op  — full L2 round; ~446 measured, nearly all
#                                  inside stdlib ECDSA/ECDH
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -bench='QUE2|WarmHandshake' -benchmem -run='^$' -benchtime=100x \
	./internal/wire ./internal/core)
echo "$out"

fail=0
check() {
	local name=$1 max=$2 allocs
	allocs=$(echo "$out" | awk -v n="^$name" '$1 ~ n {print $(NF-1); exit}')
	if [ -z "$allocs" ]; then
		echo "check_bench: benchmark $name not found in output" >&2
		fail=1
	elif [ "$allocs" -gt "$max" ]; then
		echo "check_bench: $name allocates $allocs/op > ceiling $max" >&2
		fail=1
	fi
}

check BenchmarkAppendToQUE2 0
check BenchmarkEncodeQUE2 1
check BenchmarkDecodeQUE2 8
check BenchmarkWarmHandshake 500

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "check_bench: all allocation ceilings hold"
