#!/bin/sh
# Per-package coverage gate.
#
#   scripts/check_coverage.sh          compare against scripts/coverage_baseline.txt
#   scripts/check_coverage.sh update   re-measure and rewrite the baseline floors
#
# The baseline records a floor per package, set MARGIN points below the
# coverage measured at update time: a regression that drops a package below
# its floor fails the build, while the margin absorbs run-to-run noise from
# timing-dependent paths (retry branches, drain timeouts) that real-clock
# tests can't pin exactly. Packages without test files are not gated.
set -eu

cd "$(dirname "$0")/.."
BASELINE=scripts/coverage_baseline.txt
MARGIN=${MARGIN:-2.0}
MODE=${1:-check}

measure() {
	go test -count=1 -cover ./... 2>&1 | awk '
		/^ok/ && /coverage:/ {
			for (i = 1; i <= NF; i++)
				if ($i == "coverage:") { pct = $(i+1); sub(/%/, "", pct); print $2, pct }
		}'
}

case "$MODE" in
update)
	measure | awk -v m="$MARGIN" '{ f = $2 - m; if (f < 0) f = 0; printf "%s %.1f\n", $1, f }' >"$BASELINE"
	echo "wrote $BASELINE:"
	cat "$BASELINE"
	;;
check)
	[ -f "$BASELINE" ] || { echo "missing $BASELINE — run scripts/check_coverage.sh update" >&2; exit 2; }
	measure >/tmp/cover.$$ || { rm -f /tmp/cover.$$; exit 1; }
	status=0
	while read -r pkg floor; do
		got=$(awk -v p="$pkg" '$1 == p { print $2 }' /tmp/cover.$$)
		if [ -z "$got" ]; then
			echo "FAIL $pkg: no coverage reported (package removed? update the baseline)"
			status=1
		elif awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g < f) }'; then
			echo "FAIL $pkg: coverage ${got}% fell below floor ${floor}%"
			status=1
		else
			echo "ok   $pkg: ${got}% (floor ${floor}%)"
		fi
	done <"$BASELINE"
	rm -f /tmp/cover.$$
	exit $status
	;;
*)
	echo "usage: $0 [check|update]" >&2
	exit 2
	;;
esac
