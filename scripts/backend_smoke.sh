#!/bin/sh
# End-to-end backend-service smoke: a real argus-backend daemon serving the
# versioned /v1 API, real argus-node processes sourcing their credentials
# from it over HTTP. Passes only when
#
#   1. argus-backend comes up, provisions the demo tenant, and announces its
#      listener and the tenant auth key,
#   2. a subject completes L1/L2/L3 discovery against object daemons whose
#      credentials all came from the live service (no snapshot file anywhere),
#   3. after a SIGKILL (no compaction, WAL replay only) the restarted daemon
#      serves the same tenant and a fresh subject discovers all three levels
#      again.
#
# This is the CI backend-smoke job; run it locally with `make backend-smoke`.
set -eu

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
BACKEND_PID=""
OBJ_PID=""
cleanup() {
	[ -n "$OBJ_PID" ] && kill "$OBJ_PID" 2>/dev/null || true
	if [ -n "$BACKEND_PID" ]; then
		kill "$BACKEND_PID" 2>/dev/null || true
		wait "$BACKEND_PID" 2>/dev/null || true # let shutdown compaction finish
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/argus-backend" ./cmd/argus-backend
go build -o "$TMP/argus-node" ./cmd/argus-node

start_backend() {
	"$TMP/argus-backend" -listen 127.0.0.1:0 -data "$TMP/data" \
		-admin-key smoke-root -init-demo >"$TMP/backend.log" 2>&1 &
	BACKEND_PID=$!
	i=0
	while [ $i -lt 100 ]; do
		BASE=$(sed -n 's/^listening addr=/http:\/\//p' "$TMP/backend.log" | head -n 1)
		AUTH=$(sed -n 's/^tenant name=demo auth-key=//p' "$TMP/backend.log" | head -n 1)
		[ -n "$BASE" ] && [ -n "$AUTH" ] && return 0
		if ! kill -0 "$BACKEND_PID" 2>/dev/null; then
			echo "backend smoke: argus-backend died during startup" >&2
			cat "$TMP/backend.log" >&2
			exit 1
		fi
		sleep 0.1
		i=$((i + 1))
	done
	echo "backend smoke: argus-backend never announced its listener" >&2
	cat "$TMP/backend.log" >&2
	exit 1
}

run_discovery() {
	round=$1
	"$TMP/argus-node" -role object -names thermometer,printer,kiosk \
		-backend "$BASE" -tenant demo -auth-key "$AUTH" \
		-listen 127.0.0.1:0 >"$TMP/objects.$round.log" 2>&1 &
	OBJ_PID=$!
	PEERS=""
	i=0
	while [ $i -lt 100 ]; do
		PEERS=$(sed -n 's/^listening name=[a-z]* addr=//p' "$TMP/objects.$round.log" | paste -sd, -)
		case "$PEERS" in *,*,*) break ;; esac
		if ! kill -0 "$OBJ_PID" 2>/dev/null; then
			echo "backend smoke: object daemon died (round $round)" >&2
			cat "$TMP/objects.$round.log" >&2
			exit 1
		fi
		sleep 0.1
		i=$((i + 1))
	done
	case "$PEERS" in
	*,*,*) ;;
	*)
		echo "backend smoke: objects never announced three listeners (round $round)" >&2
		cat "$TMP/objects.$round.log" >&2
		exit 1
		;;
	esac

	"$TMP/argus-node" -role subject -name alice \
		-backend "$BASE" -tenant demo -auth-key "$AUTH" \
		-listen 127.0.0.1:0 -peers "$PEERS" -ttl 1 \
		-expect thermometer=L1,printer=L2,kiosk=L3 -timeout 30s
	kill "$OBJ_PID" 2>/dev/null || true
	wait "$OBJ_PID" 2>/dev/null || true
	OBJ_PID=""
}

start_backend
run_discovery 1

# Crash the daemon hard — SIGKILL skips shutdown compaction, so the restart
# must rebuild tenant state by replaying the write-ahead log.
kill -9 "$BACKEND_PID"
wait "$BACKEND_PID" 2>/dev/null || true
BACKEND_PID=""
: >"$TMP/backend.log"

start_backend
run_discovery 2

echo "backend smoke: PASS"
