// Covert: a deep dive into Level 3 indistinguishability (§VI). The example
// runs the same fellow/non-fellow discovery under protocol v2.0 and v3.0
// while a passive eavesdropper captures every message, then prints what the
// attacker can and cannot conclude:
//
//   - v2.0: the eavesdropper sees that a fellow's QUE2 is 32 bytes longer
//     (the optional MAC_{S,3}) and an internal rogue subject can run the
//     elimination attack (§VII Case 8) to unmask Level 3 objects.
//
//   - v3.0: every QUE2 carries both MACs (cover-up keys), Level 3 objects
//     are double-faced, and both attacks come up empty.
//
//     go run ./examples/covert
package main

import (
	"fmt"
	"log"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

// capture is one observed radio message.
type capture struct {
	kind wire.MsgType
	size int
}

// runScenario performs one discovery with an eavesdropper attached and
// returns the subject's perceived result plus the captured traffic.
func runScenario(version wire.Version, fellow bool) (results []core.Discovery, traffic []capture) {
	b, err := backend.New(suite.S128)
	if err != nil {
		log.Fatal(err)
	}
	grp, _ := b.Groups.CreateGroup("support program")
	// Level 2 face: any student may buy magazines.
	b.AddPolicy(attr.MustParse("position=='student'"),
		attr.MustParse("type=='vending'"), []string{"buy-magazine"})

	sid, _, _ := b.RegisterSubject("student", attr.MustSet("position=student"))
	if fellow {
		b.AddSubjectToGroup(sid, grp.ID())
	}
	oid, _, _ := b.RegisterObject("magazine-machine", backend.L3,
		attr.MustSet("type=vending"), []string{"buy-magazine"})
	b.AddCovertService(oid, grp.ID(), []string{"buy-magazine", "counseling-flyers"})

	net := netsim.New(netsim.DefaultWiFi(), 3)
	net.Snoop(func(_, _ netsim.NodeID, p []byte) {
		if m, err := wire.Decode(p); err == nil {
			traffic = append(traffic, capture{m.Type(), len(p)})
		}
	})

	sprov, _ := b.ProvisionSubject(sid)
	sep := net.NewEndpoint()
	subj := core.NewSubject(sprov, version, core.Costs{}, core.WithEndpoint(sep))
	oprov, _ := b.ProvisionObject(oid)
	oep := net.NewEndpoint()
	core.NewObject(oprov, version, core.Costs{}, core.WithEndpoint(oep))
	net.Link(sep.Node(), oep.Node())

	if err := subj.Discover(1); err != nil {
		log.Fatal(err)
	}
	net.Run(0)
	return subj.Results(), traffic
}

func sizeOf(traffic []capture, t wire.MsgType) int {
	for _, c := range traffic {
		if c.kind == t {
			return c.size
		}
	}
	return 0
}

func main() {
	for _, version := range []wire.Version{wire.V20, wire.V30} {
		fmt.Printf("==== protocol %v ====\n", version)

		fres, ftraffic := runScenario(version, true)
		nres, ntraffic := runScenario(version, false)

		describe := func(who string, res []core.Discovery) {
			if len(res) == 0 {
				fmt.Printf("  %-22s discovery FAILED (no verifiable RES2)\n", who)
				return
			}
			fmt.Printf("  %-22s sees %v as %v: %v\n", who, "magazine-machine", res[0].Level, res[0].Profile.Functions)
		}
		describe("fellow (in program):", fres)
		describe("non-fellow student:", nres)

		fq := sizeOf(ftraffic, wire.TQUE2)
		nq := sizeOf(ntraffic, wire.TQUE2)
		fr := sizeOf(ftraffic, wire.TRES2)
		nr := sizeOf(ntraffic, wire.TRES2)
		fmt.Printf("  eavesdropper: QUE2 %d B (fellow) vs %d B (other); RES2 %d B vs %d B\n", fq, nq, fr, nr)

		switch version {
		case wire.V20:
			fmt.Println("  → v2.0 LEAKS: the fellow's QUE2 carries an extra 32-byte MAC, and a")
			fmt.Println("    rogue insider can distinguish the machine (its RES2 never verifies")
			fmt.Println("    under K2 — the elimination attack of §VII Case 8).")
		case wire.V30:
			fmt.Println("  → v3.0: both QUE2s have identical composition (cover-up key), the")
			fmt.Println("    machine double-faces (MAC_{O,2} to non-fellows), message lengths")
			fmt.Println("    match — the eavesdropper cannot even tell Level 3 is happening.")
		}
		fmt.Println()
	}
}
