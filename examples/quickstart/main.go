// Quickstart: the smallest complete Argus deployment — one backend, three
// objects (one per visibility level), one subject — using only the public
// facade (package argus).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"argus"
)

func main() {
	// 1. The enterprise backend: the trusted authority everything registers
	// with out of band (§IV-A of the paper).
	b, err := argus.NewBackend(argus.Strength128)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A Level 2 policy: staff may use the printer.
	if _, _, err := b.AddPolicy(
		argus.MustPredicate("position=='staff'"),
		argus.MustPredicate("type=='printer'"),
		[]string{"print", "scan"}); err != nil {
		log.Fatal(err)
	}

	// 3. A secret group for Level 3: only the backend knows which sensitive
	// attribute it stands for.
	grp, err := b.Groups.CreateGroup("employees needing confidential support")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Register the subject (a staff member in the secret group) and three
	// objects, one per level.
	alice, _, err := b.RegisterSubject("alice", argus.MustAttrs("position=staff"))
	if err != nil {
		log.Fatal(err)
	}
	if err := b.AddSubjectToGroup(alice, grp.ID()); err != nil {
		log.Fatal(err)
	}
	thermo, _, _ := b.RegisterObject("hall-thermometer", argus.L1,
		argus.MustAttrs("type=thermometer"), []string{"read-temperature"})
	printer, _, _ := b.RegisterObject("office-printer", argus.L2,
		argus.MustAttrs("type=printer"), []string{"print", "scan", "admin"})
	kiosk, _, _ := b.RegisterObject("info-kiosk", argus.L3,
		argus.MustAttrs("type=kiosk"), []string{"browse"})
	if err := b.AddCovertService(kiosk, grp.ID(), []string{"browse", "support-contacts"}); err != nil {
		log.Fatal(err)
	}

	// 5. Build the ground network: a star of radio links around alice.
	net := argus.NewNetwork(argus.DefaultWiFi(), 1)
	subject, home, err := argus.AttachSubject(b, net, alice, argus.V30, argus.Costs{})
	if err != nil {
		log.Fatal(err)
	}
	for _, oid := range []argus.ID{thermo, printer, kiosk} {
		_, node, err := argus.AttachObject(b, net, oid, argus.V30, argus.Costs{})
		if err != nil {
			log.Fatal(err)
		}
		net.Link(home, node)
	}

	// 6. Discover: one broadcast, all three levels answered concurrently.
	if err := subject.Discover(1); err != nil {
		log.Fatal(err)
	}
	net.Run(0)

	fmt.Println("alice discovered:")
	for _, d := range subject.Results() {
		fmt.Printf("  %-8s functions=%v (at virtual %v)\n", d.Level, d.Profile.Functions, d.At.Round(1e6))
	}
	// The kiosk answered alice's QUE2 with its Level 3 face: she is a fellow,
	// so she sees "support-contacts". Any other subject would have seen a
	// plain Level 2 browse kiosk — and could not tell the difference.
}
