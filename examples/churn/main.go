// Churn: enterprise user churn and the updating overhead of §VIII / Table I.
// The example provisions a department of objects, walks a new employee
// through onboarding (overhead 1), lets her discover services, then revokes
// her (overhead N + γ−1) and shows that de-authorized discovery fails while
// remaining fellows keep working after the group re-key.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/scale"
	"argus/internal/suite"
	"argus/internal/wire"
)

const nObjects = 12

func main() {
	b, err := backend.New(suite.S128)
	if err != nil {
		log.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='engineer'"),
		attr.MustParse("type=='equipment'"), []string{"use", "calibrate"})
	grp, _ := b.Groups.CreateGroup("peer support circle")

	var objIDs []cert.ID
	for i := 0; i < nObjects; i++ {
		id, _, err := b.RegisterObject(fmt.Sprintf("equipment-%02d", i), backend.L2,
			attr.MustSet("type=equipment"), []string{"use", "calibrate"})
		if err != nil {
			log.Fatal(err)
		}
		objIDs = append(objIDs, id)
	}
	kiosk, _, _ := b.RegisterObject("support-kiosk", backend.L3,
		attr.MustSet("type=kiosk"), []string{"browse"})
	b.AddCovertService(kiosk, grp.ID(), []string{"browse", "peer-support"})
	objIDs = append(objIDs, kiosk)

	// --- onboarding ---
	fmt.Println("== onboarding engineer-eve ==")
	eve, rep, err := b.RegisterSubject("engineer-eve", attr.MustSet("position=engineer"))
	if err != nil {
		log.Fatal(err)
	}
	b.AddSubjectToGroup(eve, grp.ID())
	// A fellow who stays after eve leaves.
	frank, _, _ := b.RegisterSubject("engineer-frank", attr.MustSet("position=engineer"))
	b.AddSubjectToGroup(frank, grp.ID())

	fmt.Printf("ground notifications for the new subject: %d (Table I 'Add a subject': 1 backend\n", rep.Total())
	fmt.Println("contact, zero object updates — vs N for ID-based ACL)")

	deploy := func(who cert.ID) (*core.Subject, *netsim.Network, *backend.SubjectProvision) {
		net := netsim.New(netsim.DefaultWiFi(), 5)
		sprov, err := b.ProvisionSubject(who)
		if err != nil {
			log.Fatal(err)
		}
		sep := net.NewEndpoint()
		sn := sep.Node()
		s := core.NewSubject(sprov, wire.V30, core.Costs{}, core.WithEndpoint(sep))
		for _, oid := range objIDs {
			prov, err := b.ProvisionObject(oid)
			if err != nil {
				log.Fatal(err)
			}
			oep := net.NewEndpoint()
			core.NewObject(prov, wire.V30, core.Costs{}, core.WithEndpoint(oep))
			net.Link(sn, oep.Node())
		}
		return s, net, sprov
	}

	fmt.Println("\n== eve discovers ==")
	s, net, eveOldCreds := deploy(eve)
	s.Discover(1)
	net.Run(0)
	count := map[backend.Level]int{}
	for _, d := range s.Results() {
		count[d.Level]++
	}
	fmt.Printf("eve sees %d services (L2 %d, L3 %d)\n", len(s.Results()), count[backend.L2], count[backend.L3])

	// --- revocation ---
	fmt.Println("\n== eve leaves the company ==")
	rm, err := b.RevokeSubject(eve)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend notified %d objects (N) and re-keyed %d fellows (γ−1)\n",
		len(rm.NotifiedObjects), len(rm.NotifiedSubjects))
	// γ = 3: eve, frank and the kiosk were fellows of the support circle.
	model := scale.Of(scale.SchemeArgus, scale.Params{
		N: len(rm.NotifiedObjects), Alpha: 2, Beta: nObjects, Gamma: 3, XiO: 1, XiS: 1})
	fmt.Printf("matches the §VIII model: remove-subject overhead N = %d, group re-key γ−1 = %d\n",
		model.RemoveSubject, model.RemoveGroupMember)

	// Eve's device still holds her old credentials; the objects refuse her.
	fmt.Println("\n== eve tries again with her old credentials ==")
	net2 := netsim.New(netsim.DefaultWiFi(), 6)
	// Eve's device keeps the credentials it was issued before revocation.
	evep := net2.NewEndpoint()
	sn := evep.Node()
	eveDev := core.NewSubject(eveOldCreds, wire.V30, core.Costs{}, core.WithEndpoint(evep))
	secure := 0
	for _, oid := range objIDs {
		prov, err := b.ProvisionObject(oid) // objects have the revocation notice now
		if err != nil {
			log.Fatal(err)
		}
		oep := net2.NewEndpoint()
		core.NewObject(prov, wire.V30, core.Costs{}, core.WithEndpoint(oep))
		net2.Link(sn, oep.Node())
	}
	eveDev.Discover(1)
	net2.Run(0)
	for _, d := range eveDev.Results() {
		if d.Level != backend.L1 {
			secure++
		}
	}
	fmt.Printf("eve now discovers %d Level 2/3 services (was %d)\n", secure, count[backend.L2]+count[backend.L3])

	// Frank, the remaining fellow, received the rotated group key and still
	// reaches the covert service.
	fmt.Println("\n== frank (remaining fellow) rediscovers ==")
	fs, fnet, _ := deploy(frank)
	fs.Discover(1)
	fnet.Run(0)
	for _, d := range fs.Results() {
		if d.Level == backend.L3 {
			fmt.Printf("frank still sees the covert service: %v\n", d.Profile.Functions)
		}
	}
}
