// Enterprise: the full §II-A picture in one run — a root backend with two
// building sub-backends (chain of trust), heterogeneous radios (the annex is
// reached over a BLE bridge), and a staff member whose credentials from
// building A are honored everywhere in the enterprise because every device
// verifies against the single root anchor.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"time"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

func main() {
	// The hierarchy: one root, two building servers.
	root, err := backend.New(suite.S128)
	if err != nil {
		log.Fatal(err)
	}
	buildingA, err := root.NewSubordinate("building-A backend")
	if err != nil {
		log.Fatal(err)
	}
	annex, err := root.NewSubordinate("annex backend")
	if err != nil {
		log.Fatal(err)
	}

	// Each building sets its own policies (per-building policy autonomy).
	buildingA.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='printer'"), []string{"print"})
	annex.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='sensor'"), []string{"read-telemetry"})

	// Alice registers once, at building A.
	alice, _, err := buildingA.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		log.Fatal(err)
	}

	// Devices: a printer in building A (WiFi) and a telemetry sensor in the
	// annex, reachable only through a BLE bridging device (§II-A).
	printer, _, _ := buildingA.RegisterObject("printer-A", backend.L2,
		attr.MustSet("type=printer"), []string{"print"})
	sensor, _, _ := annex.RegisterObject("annex-sensor", backend.L2,
		attr.MustSet("type=sensor"), []string{"read-telemetry"})

	wifi := netsim.DefaultWiFi()
	ble := netsim.LinkModel{
		PerMessage:       10 * time.Millisecond,
		BytesPerSecond:   30_000,
		PropagationDelay: 20 * time.Millisecond,
		JitterFrac:       0.1,
	}
	net := netsim.New(wifi, 1)

	attach := func(b *backend.Backend, id cert.ID, subject bool) (netsim.NodeID, *core.Subject) {
		ep := net.NewEndpoint()
		if subject {
			prov, err := b.ProvisionSubject(id)
			if err != nil {
				log.Fatal(err)
			}
			s := core.NewSubject(prov, wire.V30, core.Costs{}, core.WithEndpoint(ep))
			return ep.Node(), s
		}
		prov, err := b.ProvisionObject(id)
		if err != nil {
			log.Fatal(err)
		}
		core.NewObject(prov, wire.V30, core.Costs{}, core.WithEndpoint(ep))
		return ep.Node(), nil
	}

	aliceNode, aliceEngine := attach(buildingA, alice, true)
	printerNode, _ := attach(buildingA, printer, false)
	sensorNode, _ := attach(annex, sensor, false)
	bridge := net.AddNode(nil) // the WiFi↔BLE bridging device

	net.LinkOn(aliceNode, printerNode, 0, wifi)
	net.LinkOn(aliceNode, bridge, 0, wifi)
	net.LinkOn(bridge, sensorNode, 1, ble)

	fmt.Println("alice (registered at building A) walks the enterprise...")
	if err := aliceEngine.Discover(2); err != nil {
		log.Fatal(err)
	}
	net.Run(0)

	for _, d := range aliceEngine.Results() {
		var where, radio string
		switch d.Node {
		case netsim.AddrOf(printerNode):
			where, radio = "building A", "WiFi, 1 hop"
		case netsim.AddrOf(sensorNode):
			where, radio = "annex", "via BLE bridge, 2 hops"
		}
		fmt.Printf("  %-8s %v (%s; %s; at %v)\n",
			d.Level, d.Profile.Functions, where, radio, d.At.Round(1e6))
	}
	fmt.Println()
	fmt.Println("both objects verified alice's CERT and PROF through building A's CA")
	fmt.Println("chain up to the shared root anchor — she never re-registered at the")
	fmt.Println("annex, and the annex backend never learned her private key (§II-A).")
}
