// Propagation: backend changes effectuated over the air (§IV-A, §VIII).
// A backend gateway pushes admin-signed, sequence-numbered notifications
// across the same radios that carry discovery traffic; objects verify each
// notification against the admin public key before applying it. The example
// also shows why the signatures matter: a forged revocation is rejected.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"log"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/update"
	"argus/internal/wire"
)

const nObjects = 6

func main() {
	b, err := backend.New(suite.S128)
	if err != nil {
		log.Fatal(err)
	}
	b.AddPolicy(attr.MustParse("position=='staff'"),
		attr.MustParse("type=='lock'"), []string{"open"})
	alice, _, err := b.RegisterSubject("alice", attr.MustSet("position=staff"))
	if err != nil {
		log.Fatal(err)
	}

	net := netsim.New(netsim.DefaultWiFi(), 1)
	sprov, err := b.ProvisionSubject(alice)
	if err != nil {
		log.Fatal(err)
	}
	sep := net.NewEndpoint()
	home := sep.Node()
	subj := core.NewSubject(sprov, wire.V30, core.Costs{}, core.WithEndpoint(sep))

	// The backend's ground gateway shares the cell with the devices.
	dep := net.NewEndpoint()
	dist := update.NewDistributor(b.Admin(), dep)
	net.Link(home, dep.Node())

	agents := make([]*update.Agent, 0, nObjects)
	objNodes := make([]netsim.NodeID, 0, nObjects)
	for i := 0; i < nObjects; i++ {
		oid, _, err := b.RegisterObject(fmt.Sprintf("lock-%d", i), backend.L2,
			attr.MustSet("type=lock"), []string{"open"})
		if err != nil {
			log.Fatal(err)
		}
		prov, err := b.ProvisionObject(oid)
		if err != nil {
			log.Fatal(err)
		}
		eng := core.NewObject(prov, wire.V30, core.Costs{})
		agent := update.NewAgent(b.AdminPublic(), nil, func(u *update.Notification) {
			if u.Kind == update.KindRevokeSubject {
				eng.Revoke(u.Subject)
			}
		})
		oep := net.NewEndpoint()
		node := oep.Node()
		eng.Bind(agent.Wrap(oep))
		net.Link(home, node)
		dist.Register(oid, oep.Addr())
		agents = append(agents, agent)
		objNodes = append(objNodes, node)
	}

	subj.Discover(1)
	net.Run(0)
	fmt.Printf("before revocation: alice discovers %d/%d locks\n", len(subj.Results()), nObjects)

	// An attacker on the same radio tries to forge a revocation first.
	fmt.Println("\nattacker forges a revocation notification for alice...")
	forger, _ := cert.NewAdmin(suite.S128, "rogue-admin")
	fake := &update.Notification{Kind: update.KindRevokeSubject, Seq: 99, Subject: alice}
	// The forger signs with its own key (it has no access to the real one).
	sig, _ := forger.Sign([]byte("whatever"))
	fake.Sig = sig
	atk := net.AddNode(nil)
	net.Link(home, atk)
	for _, node := range objNodes {
		net.Send(atk, node, fake.Encode())
	}
	net.Run(0)
	rejected := 0
	for _, a := range agents {
		rejected += a.Rejected()
	}
	fmt.Printf("forged notifications rejected by %d/%d objects (bad admin signature)\n", rejected, nObjects)

	before := len(subj.Results())
	subj.Discover(1)
	net.Run(0)
	fmt.Printf("alice still discovers %d/%d locks\n", len(subj.Results())-before, nObjects)

	// Now the real thing: backend revokes and the gateway pushes.
	fmt.Println("\nbackend revokes alice; gateway pushes signed notifications...")
	rep, err := b.RevokeSubject(alice)
	if err != nil {
		log.Fatal(err)
	}
	start := net.Now()
	if err := dist.RevokeSubject(alice, rep.NotifiedObjects); err != nil {
		log.Fatal(err)
	}
	net.Run(0)
	fmt.Printf("%d notifications effectuated in %v of virtual time\n",
		dist.Sent(), (net.Now() - start).Round(1e6))

	before = len(subj.Results())
	subj.Discover(1)
	net.Run(0)
	fmt.Printf("after revocation: alice discovers %d/%d locks\n", len(subj.Results())-before, nObjects)
}
