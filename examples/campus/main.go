// Campus: the paper's motivating scenario (§I, §II) at small scale — a
// university building where thousands of heterogeneous services coexist:
//
//   - public utilities (aisle thermometers, hallway lights) visible to
//     everyone including visitors (Level 1);
//   - office equipment behind walls (multimedia stations, safes, door locks)
//     whose visibility is differentiated by role and department (Level 2);
//   - a magazine vending machine that covertly dispenses counseling flyers
//     to students in a support program, indistinguishable from an ordinary
//     machine to everyone else (Level 3).
//
// Four people walk through with their phones; the example prints what each
// of them sees.
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"sort"

	"argus/internal/attr"
	"argus/internal/backend"
	"argus/internal/cert"
	"argus/internal/core"
	"argus/internal/netsim"
	"argus/internal/suite"
	"argus/internal/wire"
)

type person struct {
	name    string
	attrs   attr.Set
	inGroup bool
}

func main() {
	b, err := backend.New(suite.S128)
	if err != nil {
		log.Fatal(err)
	}

	// Access-control policies, defined on categories (§II-B), not identities.
	mustPolicy(b, "position=='staff' || position=='manager'",
		"type=='multimedia' && department=='CS'", "play", "present")
	mustPolicy(b, "position=='manager'",
		"type=='safe'", "open", "close")
	mustPolicy(b, "position=='manager' || position=='staff' || position=='student'",
		"type=='door lock' && room_type=='lab'", "unlock")
	mustPolicy(b, "position=='student' || position=='staff' || position=='manager'",
		"type=='vending'", "buy-magazine")

	// The secret group: students in the counseling support program. Only the
	// backend knows this mapping (§VII Case 5).
	support, err := b.Groups.CreateGroup("students in counseling support program")
	if err != nil {
		log.Fatal(err)
	}

	// The building's devices.
	objects := []struct {
		name  string
		level backend.Level
		attrs string
		funcs []string
	}{
		{"aisle-thermometer", backend.L1, "type=thermometer,floor=2", []string{"read-temperature"}},
		{"hallway-light", backend.L1, "type=light,floor=2", []string{"read-state"}},
		{"cs-multimedia", backend.L2, "type=multimedia,department=CS,room=201", []string{"play", "present", "configure"}},
		{"office-safe", backend.L2, "type=safe,room=202", []string{"open", "close"}},
		{"lab-door", backend.L2, "type=door lock,room_type=lab", []string{"unlock", "audit"}},
		{"magazine-machine", backend.L3, "type=vending,floor=2", []string{"buy-magazine"}},
	}
	ids := make(map[string]cert.ID)
	for _, o := range objects {
		id, _, err := b.RegisterObject(o.name, o.level, attr.MustSet(o.attrs), o.funcs)
		if err != nil {
			log.Fatal(err)
		}
		ids[o.name] = id
	}
	// The machine's covert face for the support program.
	if err := b.AddCovertService(ids["magazine-machine"], support.ID(),
		[]string{"buy-magazine", "counseling-flyers", "university-policy-info"}); err != nil {
		log.Fatal(err)
	}

	people := []person{
		{"visitor-victor", attr.MustSet("position=visitor"), false},
		{"student-sam", attr.MustSet("position=student,department=CS"), false},
		{"student-sofia", attr.MustSet("position=student,department=CS"), true}, // in the support program
		{"manager-maria", attr.MustSet("position=manager,department=CS"), false},
	}

	for _, p := range people {
		sid, _, err := b.RegisterSubject(p.name, p.attrs)
		if err != nil {
			log.Fatal(err)
		}
		if p.inGroup {
			if err := b.AddSubjectToGroup(sid, support.ID()); err != nil {
				log.Fatal(err)
			}
		}

		// Fresh ground network per walkthrough.
		net := netsim.New(netsim.DefaultWiFi(), 7)
		sprov, err := b.ProvisionSubject(sid)
		if err != nil {
			log.Fatal(err)
		}
		sep := net.NewEndpoint()
		sn := sep.Node()
		subj := core.NewSubject(sprov, wire.V30, core.Costs{}, core.WithEndpoint(sep))
		for _, o := range objects {
			prov, err := b.ProvisionObject(ids[o.name])
			if err != nil {
				log.Fatal(err)
			}
			oep := net.NewEndpoint()
			core.NewObject(prov, wire.V30, core.Costs{}, core.WithEndpoint(oep))
			net.Link(sn, oep.Node())
		}

		if err := subj.Discover(1); err != nil {
			log.Fatal(err)
		}
		net.Run(0)

		fmt.Printf("\n%s (%s) sees %d services:\n", p.name, p.attrs, len(subj.Results()))
		lines := make([]string, 0, len(subj.Results()))
		for _, d := range subj.Results() {
			name := nameOf(ids, d.Object)
			lines = append(lines, fmt.Sprintf("  %-18s %-8s %v", name, d.Level, d.Profile.Functions))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	fmt.Println("\nnote: sam and sofia both \"see\" the magazine machine — but only sofia's")
	fmt.Println("phone verified MAC_{O,3} and received the covert flyer service. Nothing")
	fmt.Println("on the air distinguishes her traffic from sam's (v3.0, §VI-B).")
}

func mustPolicy(b *backend.Backend, subj, obj string, rights ...string) {
	if _, _, err := b.AddPolicy(attr.MustParse(subj), attr.MustParse(obj), rights); err != nil {
		log.Fatal(err)
	}
}

func nameOf(ids map[string]cert.ID, id cert.ID) string {
	for name, v := range ids {
		if v == id {
			return name
		}
	}
	return id.String()[:12]
}
